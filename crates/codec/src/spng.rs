//! spng — a from-scratch lossless image codec with PNG's cost anatomy.
//!
//! Encoding: per-scanline predictive filtering (None/Sub/Up/Average/Paeth,
//! chosen per row by the minimum-sum-of-absolute-values heuristic) followed
//! by LZ77 with a 32 KiB window and canonical Huffman coding of the
//! literal/length and distance alphabets (DEFLATE's token structure with a
//! simplified container).
//!
//! Decoding is strictly sequential in raster order — like PNG, there is no
//! random access, so the only partial-decoding feature is **early stopping**
//! (Table 4): `decode_rows` stops the LZ decode as soon as the requested
//! scanlines are reconstructed.

use crate::bitio::{BitReader, BitWriter};
use crate::error::{Error, Result};
use crate::huffman::HuffmanTable;
use bytes::Bytes;
use smol_imgproc::ImageU8;

const MAGIC: u32 = 0x5350_4E47; // "SPNG"
const VERSION: u32 = 1;

const END_OF_STREAM: u16 = 256;
const LITLEN_ALPHABET: usize = 286;
const DIST_ALPHABET: usize = 30;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const WINDOW: usize = 32 * 1024;

/// DEFLATE length-code base values for codes 257..=285.
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// DEFLATE distance-code base values for codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

fn length_code(len: usize) -> (u16, u8, u16) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let mut code = 0;
    for (i, &base) in LENGTH_BASE.iter().enumerate() {
        if len >= base as usize {
            code = i;
        } else {
            break;
        }
    }
    (
        257 + code as u16,
        LENGTH_EXTRA[code],
        (len - LENGTH_BASE[code] as usize) as u16,
    )
}

fn dist_code(dist: usize) -> (u16, u8, u16) {
    debug_assert!(dist >= 1);
    let mut code = 0;
    for (i, &base) in DIST_BASE.iter().enumerate() {
        if dist >= base as usize {
            code = i;
        } else {
            break;
        }
    }
    (
        code as u16,
        DIST_EXTRA[code],
        (dist - DIST_BASE[code] as usize) as u16,
    )
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

#[inline]
fn paeth(a: u8, b: u8, c: u8) -> u8 {
    let (pa, pb, pc) = {
        let p = a as i16 + b as i16 - c as i16;
        (
            (p - a as i16).abs(),
            (p - b as i16).abs(),
            (p - c as i16).abs(),
        )
    };
    if pa <= pb && pa <= pc {
        a
    } else if pb <= pc {
        b
    } else {
        c
    }
}

/// Applies filter `ftype` to `row` given the previous row, writing residuals.
fn filter_row(ftype: u8, row: &[u8], prev: Option<&[u8]>, bpp: usize, out: &mut Vec<u8>) {
    for (i, &v) in row.iter().enumerate() {
        let a = if i >= bpp { row[i - bpp] } else { 0 };
        let b = prev.map_or(0, |p| p[i]);
        let c = if i >= bpp {
            prev.map_or(0, |p| p[i - bpp])
        } else {
            0
        };
        let pred = match ftype {
            0 => 0,
            1 => a,
            2 => b,
            3 => ((a as u16 + b as u16) / 2) as u8,
            _ => paeth(a, b, c),
        };
        out.push(v.wrapping_sub(pred));
    }
}

/// Reconstructs a filtered row in place (prev is the already-reconstructed
/// previous row).
fn unfilter_row(ftype: u8, row: &mut [u8], prev: Option<&[u8]>, bpp: usize) {
    for i in 0..row.len() {
        let a = if i >= bpp { row[i - bpp] } else { 0 };
        let b = prev.map_or(0, |p| p[i]);
        let c = if i >= bpp {
            prev.map_or(0, |p| p[i - bpp])
        } else {
            0
        };
        let pred = match ftype {
            0 => 0,
            1 => a,
            2 => b,
            3 => ((a as u16 + b as u16) / 2) as u8,
            _ => paeth(a, b, c),
        };
        row[i] = row[i].wrapping_add(pred);
    }
}

// ---------------------------------------------------------------------------
// LZ77
// ---------------------------------------------------------------------------

enum Token {
    Literal(u8),
    Match { len: u16, dist: u16 },
}

/// Greedy hash-chain LZ77 over the filtered byte stream.
fn lz77(data: &[u8]) -> Vec<Token> {
    const HASH_BITS: usize = 15;
    const HASH_SIZE: usize = 1 << HASH_BITS;
    const MAX_CHAIN: usize = 64;
    let hash = |d: &[u8]| -> usize {
        ((d[0] as usize) << 10 ^ (d[1] as usize) << 5 ^ (d[2] as usize)) & (HASH_SIZE - 1)
    };
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut chain = vec![usize::MAX; data.len()];
    let mut tokens = Vec::with_capacity(data.len() / 2);
    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash(&data[i..]);
            let mut cand = head[h];
            let mut tries = MAX_CHAIN;
            while cand != usize::MAX && tries > 0 && i - cand <= WINDOW {
                let max = (data.len() - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l >= MAX_MATCH {
                        break;
                    }
                }
                cand = chain[cand];
                tries -= 1;
            }
            chain[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert hash entries for skipped positions (cheap variant:
            // every other position) to keep future matches findable.
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= data.len() {
                let h = hash(&data[j..]);
                chain[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
    tokens
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Encodes an image losslessly.
pub fn encode(img: &ImageU8) -> Result<Bytes> {
    if img.width() == 0 || img.height() == 0 {
        return Err(Error::BadHeader("zero-sized image".into()));
    }
    let bpp = img.channels();
    let stride = img.width() * bpp;

    // Filter each row, picking the filter minimizing sum of |residual|.
    let mut filtered = Vec::with_capacity((stride + 1) * img.height());
    let mut scratch: Vec<u8> = Vec::with_capacity(stride);
    for y in 0..img.height() {
        let row = img.row(y);
        let prev = if y > 0 { Some(img.row(y - 1)) } else { None };
        let mut best_type = 0u8;
        let mut best_score = u64::MAX;
        let mut best: Vec<u8> = Vec::new();
        for ftype in 0..5u8 {
            scratch.clear();
            filter_row(ftype, row, prev, bpp, &mut scratch);
            let score: u64 = scratch
                .iter()
                .map(|&v| (v as i8).unsigned_abs() as u64)
                .sum();
            if score < best_score {
                best_score = score;
                best_type = ftype;
                best = scratch.clone();
            }
        }
        filtered.push(best_type);
        filtered.extend_from_slice(&best);
    }

    // LZ77 then Huffman over token alphabets.
    let tokens = lz77(&filtered);
    let mut litlen_freq = [0u64; LITLEN_ALPHABET];
    let mut dist_freq = [0u64; DIST_ALPHABET];
    for t in &tokens {
        match t {
            Token::Literal(b) => litlen_freq[*b as usize] += 1,
            Token::Match { len, dist } => {
                litlen_freq[length_code(*len as usize).0 as usize] += 1;
                dist_freq[dist_code(*dist as usize).0 as usize] += 1;
            }
        }
    }
    litlen_freq[END_OF_STREAM as usize] += 1;
    // The distance table must exist even when no matches occur.
    if dist_freq.iter().all(|&f| f == 0) {
        dist_freq[0] = 1;
    }
    let litlen = HuffmanTable::from_frequencies(&litlen_freq, 15)?;
    let dist = HuffmanTable::from_frequencies(&dist_freq, 15)?;

    let mut w = BitWriter::with_capacity(filtered.len() / 2);
    w.put(MAGIC, 32);
    w.put(VERSION, 8);
    w.put(img.width() as u32, 16);
    w.put(img.height() as u32, 16);
    w.put(bpp as u32, 8);
    litlen.write_spec(&mut w);
    dist.write_spec(&mut w);
    for t in &tokens {
        match t {
            Token::Literal(b) => litlen.encode(&mut w, *b as u16)?,
            Token::Match { len, dist: d } => {
                let (code, extra, val) = length_code(*len as usize);
                litlen.encode(&mut w, code)?;
                if extra > 0 {
                    w.put(val as u32, extra as u32);
                }
                let (dcode, dextra, dval) = dist_code(*d as usize);
                dist.encode(&mut w, dcode)?;
                if dextra > 0 {
                    w.put(dval as u32, dextra as u32);
                }
            }
        }
    }
    litlen.encode(&mut w, END_OF_STREAM)?;
    Ok(Bytes::from(w.finish()))
}

/// Reads only the image dimensions.
pub fn peek_dims(data: &[u8]) -> Result<(usize, usize)> {
    let mut r = BitReader::new(data);
    if r.bits(32)? != MAGIC {
        return Err(Error::BadMagic { expected: "SPNG" });
    }
    let _ = r.bits(8)?;
    let w = r.bits(16)? as usize;
    let h = r.bits(16)? as usize;
    Ok((w, h))
}

/// Fully decodes an spng buffer.
pub fn decode(data: &[u8]) -> Result<ImageU8> {
    decode_rows_internal(data, usize::MAX).map(|(img, _)| img)
}

/// Decodes only the first `n_rows` scanlines (early stopping), returning the
/// partial image and the fraction of compressed bytes consumed.
pub fn decode_rows(data: &[u8], n_rows: usize) -> Result<(ImageU8, f64)> {
    decode_rows_internal(data, n_rows)
}

fn decode_rows_internal(data: &[u8], n_rows: usize) -> Result<(ImageU8, f64)> {
    let mut r = BitReader::new(data);
    if r.bits(32)? != MAGIC {
        return Err(Error::BadMagic { expected: "SPNG" });
    }
    if r.bits(8)? != VERSION {
        return Err(Error::BadHeader("unsupported version".into()));
    }
    let width = r.bits(16)? as usize;
    let height = r.bits(16)? as usize;
    let bpp = r.bits(8)? as usize;
    if width == 0 || height == 0 || bpp == 0 || bpp > 4 {
        return Err(Error::BadHeader("bad dimensions".into()));
    }
    let litlen = HuffmanTable::read_spec(&mut r, LITLEN_ALPHABET)?;
    let dist = HuffmanTable::read_spec(&mut r, DIST_ALPHABET)?;

    let rows = n_rows.min(height).max(1);
    let stride = width * bpp;
    let target = rows * (stride + 1);
    let mut out: Vec<u8> = Vec::with_capacity(target);

    // LZ decode until the needed bytes are produced or the stream ends.
    while out.len() < target {
        let sym = litlen.decode(&mut r)?;
        if sym == END_OF_STREAM {
            break;
        }
        if sym < 256 {
            out.push(sym as u8);
        } else {
            let code = (sym - 257) as usize;
            if code >= LENGTH_BASE.len() {
                return Err(Error::BadCode {
                    context: "spng length code",
                });
            }
            let extra = LENGTH_EXTRA[code];
            let len = LENGTH_BASE[code] as usize
                + if extra > 0 {
                    r.bits(extra as u32)? as usize
                } else {
                    0
                };
            let dsym = dist.decode(&mut r)? as usize;
            if dsym >= DIST_BASE.len() {
                return Err(Error::BadCode {
                    context: "spng distance code",
                });
            }
            let dextra = DIST_EXTRA[dsym];
            let d = DIST_BASE[dsym] as usize
                + if dextra > 0 {
                    r.bits(dextra as u32)? as usize
                } else {
                    0
                };
            if d == 0 || d > out.len() {
                return Err(Error::BadCode {
                    context: "spng distance out of window",
                });
            }
            let start = out.len() - d;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() < target {
        return Err(Error::Truncated {
            context: "spng body",
        });
    }
    let consumed = (r.bit_pos() as f64 / 8.0) / data.len() as f64;

    // Unfilter the decoded scanlines.
    let mut img = ImageU8::zeros(width, rows, bpp);
    let mut prev: Option<Vec<u8>> = None;
    for y in 0..rows {
        let base = y * (stride + 1);
        let ftype = out[base];
        if ftype > 4 {
            return Err(Error::BadCode {
                context: "spng filter type",
            });
        }
        let mut row = out[base + 1..base + 1 + stride].to_vec();
        unfilter_row(ftype, &mut row, prev.as_deref(), bpp);
        let dst_base = y * stride;
        img.data_mut()[dst_base..dst_base + stride].copy_from_slice(&row);
        prev = Some(row);
    }
    Ok((img, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> ImageU8 {
        let mut img = ImageU8::zeros(w, h, 3);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, 0, ((x * 5 + y * 3) % 256) as u8);
                img.set(x, y, 1, ((x ^ y) % 256) as u8);
                img.set(x, y, 2, ((x * y / 7) % 256) as u8);
            }
        }
        img
    }

    #[test]
    fn roundtrip_is_lossless() {
        let img = textured(61, 43);
        let enc = encode(&img).unwrap();
        let dec = decode(&enc).unwrap();
        assert_eq!(img, dec);
    }

    #[test]
    fn smooth_images_compress() {
        let mut img = ImageU8::zeros(128, 128, 3);
        for y in 0..128 {
            for x in 0..128 {
                for c in 0..3 {
                    img.set(x, y, c, ((x + y) / 2) as u8);
                }
            }
        }
        let enc = encode(&img).unwrap();
        assert!(
            enc.len() * 4 < img.data().len(),
            "len={} raw={}",
            enc.len(),
            img.data().len()
        );
        assert_eq!(decode(&enc).unwrap(), img);
    }

    #[test]
    fn early_stop_reconstructs_prefix_rows_exactly() {
        let img = textured(80, 60);
        let enc = encode(&img).unwrap();
        let (top, consumed) = decode_rows(&enc, 15).unwrap();
        assert_eq!(top.height(), 15);
        assert!(consumed < 1.0);
        for y in 0..15 {
            assert_eq!(top.row(y), img.row(y));
        }
    }

    #[test]
    fn early_stop_consumes_less_of_the_stream() {
        let img = textured(128, 128);
        let enc = encode(&img).unwrap();
        let (_, frac_quarter) = decode_rows(&enc, 32).unwrap();
        let (_, frac_full) = decode_rows(&enc, 128).unwrap();
        assert!(
            frac_quarter < frac_full * 0.6,
            "quarter={frac_quarter} full={frac_full}"
        );
    }

    #[test]
    fn single_channel_roundtrip() {
        let mut img = ImageU8::zeros(33, 17, 1);
        for (i, v) in img.data_mut().iter_mut().enumerate() {
            *v = (i % 251) as u8;
        }
        let enc = encode(&img).unwrap();
        assert_eq!(decode(&enc).unwrap(), img);
    }

    #[test]
    fn random_noise_roundtrip() {
        // Noise defeats LZ and filters — must still be lossless.
        let mut img = ImageU8::zeros(40, 40, 3);
        let mut state = 0x12345678u32;
        for v in img.data_mut() {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            *v = (state >> 24) as u8;
        }
        let enc = encode(&img).unwrap();
        assert_eq!(decode(&enc).unwrap(), img);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let img = textured(16, 16);
        let mut enc = encode(&img).unwrap().to_vec();
        enc[1] ^= 0x55;
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let img = textured(64, 64);
        let enc = encode(&img).unwrap();
        assert!(decode(&enc[..enc.len() / 2]).is_err());
    }

    #[test]
    fn peek_dims_works() {
        let img = textured(23, 41);
        let enc = encode(&img).unwrap();
        assert_eq!(peek_dims(&enc).unwrap(), (23, 41));
    }

    #[test]
    fn paeth_matches_png_spec_examples() {
        assert_eq!(paeth(0, 0, 0), 0);
        assert_eq!(paeth(10, 20, 30), 10); // pa=20 pb=10? recompute: p=0,pa=10,pb=20,pc=30 → a
        assert_eq!(paeth(100, 100, 100), 100);
    }
}
