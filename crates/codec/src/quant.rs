//! Quantization tables and zig-zag coefficient ordering.
//!
//! The base tables are the ITU-T T.81 (JPEG) Annex K luminance/chrominance
//! tables; quality scaling follows the libjpeg convention so that sjpg's
//! `q=75` / `q=95` settings degrade fidelity comparably to JPEG's.

use crate::dct::BLOCK;
use crate::error::{Error, Result};

/// Annex K.1 luminance quantization table (raster order).
pub const BASE_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Annex K.2 chrominance quantization table (raster order).
pub const BASE_CHROMA: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Scales a base table for a quality setting in 1..=100 (libjpeg rule).
pub fn scale_table(base: &[u16; 64], quality: u8) -> Result<[u16; 64]> {
    if quality == 0 || quality > 100 {
        return Err(Error::BadQuality(quality));
    }
    let q = quality as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - q * 2 };
    let mut out = [0u16; 64];
    for (o, &b) in out.iter_mut().zip(base.iter()) {
        let v = (b as i32 * scale + 50) / 100;
        *o = v.clamp(1, 255) as u16;
    }
    Ok(out)
}

/// Zig-zag scan order: `ZIGZAG[k]` is the raster index of the k-th
/// coefficient in zig-zag order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Quantizes a frequency-domain block into zig-zag-ordered integers.
///
/// Degenerate table entries are clamped to 1 (a zeroed entry would divide
/// to infinity and saturate the cast into garbage); [`scale_table`] never
/// produces one, but a hand-built or corrupted table must not be able to
/// poison the coefficients. The same clamp is applied at dequantize so
/// encode and decode stay consistent.
pub fn quantize_zigzag(freq: &[f32; BLOCK * BLOCK], table: &[u16; 64], out: &mut [i16; 64]) {
    for (k, &raster) in ZIGZAG.iter().enumerate() {
        let q = table[raster].max(1) as f32;
        out[k] = (freq[raster] / q).round() as i16;
    }
}

/// Dequantizes zig-zag coefficients back into a raster frequency block.
///
/// Zeroed table entries are clamped to 1, mirroring [`quantize_zigzag`].
pub fn dequantize_zigzag(coefs: &[i16; 64], table: &[u16; 64], out: &mut [f32; BLOCK * BLOCK]) {
    for (k, &raster) in ZIGZAG.iter().enumerate() {
        out[raster] = coefs[k] as f32 * table[raster].max(1) as f32;
    }
}

/// [`dequantize_zigzag`] over only the first `n` zig-zag coefficients,
/// with the rest of the block zero-filled. Bit-identical to the dense
/// version when `coefs[n..]` are all zero (a zero coefficient dequantizes
/// to exactly `+0.0` — `0.0 × q` with `q ≥ 1` — which is what the fill
/// writes), but skips the multiplies past the block's last coded
/// coefficient, which quantization makes the vast majority.
///
/// Returns a bitmask of spectrum rows (bit `v` for raster row `v`) that
/// received a nonzero coefficient — exact, since `coef ≠ 0` and `q ≥ 1`
/// imply a nonzero product. The vectorized IDCT uses it to skip all-zero
/// rows without rescanning the block.
pub fn dequantize_zigzag_prefix(
    coefs: &[i16; 64],
    n: usize,
    table: &[u16; 64],
    out: &mut [f32; BLOCK * BLOCK],
) -> u32 {
    out.fill(0.0);
    let mut row_mask = 0u32;
    for (k, &raster) in ZIGZAG.iter().enumerate().take(n) {
        let c = coefs[k];
        // Unconditional store (a zero coefficient rewrites the fill's
        // `+0.0` with `0.0 × q == +0.0`) and branchless mask update: zero
        // runs inside the prefix are common enough to mispredict.
        out[raster] = c as f32 * table[raster].max(1) as f32;
        row_mask |= ((c != 0) as u32) << (raster >> 3);
    }
    row_mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Spot-check the canonical start of the pattern.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
    }

    #[test]
    fn quality_scaling_monotone() {
        let q95 = scale_table(&BASE_LUMA, 95).unwrap();
        let q75 = scale_table(&BASE_LUMA, 75).unwrap();
        let q20 = scale_table(&BASE_LUMA, 20).unwrap();
        for i in 0..64 {
            assert!(q95[i] <= q75[i]);
            assert!(q75[i] <= q20[i]);
            assert!(q95[i] >= 1);
        }
    }

    #[test]
    fn quality_100_is_near_lossless() {
        let t = scale_table(&BASE_LUMA, 100).unwrap();
        assert!(t.iter().all(|&v| v == 1));
    }

    #[test]
    fn bad_quality_rejected() {
        assert!(scale_table(&BASE_LUMA, 0).is_err());
        assert!(scale_table(&BASE_LUMA, 101).is_err());
    }

    #[test]
    fn degenerate_table_entries_clamped_not_poisonous() {
        // A zeroed table must behave like an all-ones table (near-lossless),
        // not divide to infinity and saturate the i16 cast.
        let zeroed = [0u16; 64];
        let ones = [1u16; 64];
        let mut freq = [0.0f32; 64];
        for (i, v) in freq.iter_mut().enumerate() {
            *v = (i as f32) * 3.5 - 80.0;
        }
        let mut from_zeroed = [0i16; 64];
        let mut from_ones = [0i16; 64];
        quantize_zigzag(&freq, &zeroed, &mut from_zeroed);
        quantize_zigzag(&freq, &ones, &mut from_ones);
        assert_eq!(from_zeroed, from_ones);
        let mut back_zeroed = [0.0f32; 64];
        let mut back_ones = [0.0f32; 64];
        dequantize_zigzag(&from_zeroed, &zeroed, &mut back_zeroed);
        dequantize_zigzag(&from_ones, &ones, &mut back_ones);
        assert_eq!(back_zeroed, back_ones);
    }

    #[test]
    fn prefix_dequantize_matches_dense_to_the_bit() {
        let table = scale_table(&BASE_LUMA, 80).unwrap();
        for n in [0usize, 1, 7, 23, 64] {
            let mut coefs = [0i16; 64];
            for (k, c) in coefs.iter_mut().enumerate().take(n) {
                *c = (k as i16 * 13 % 37) - 18;
            }
            let mut dense = [0.0f32; 64];
            let mut prefix = [0.0f32; 64];
            dequantize_zigzag(&coefs, &table, &mut dense);
            let mask = dequantize_zigzag_prefix(&coefs, n, &table, &mut prefix);
            for i in 0..64 {
                assert_eq!(dense[i].to_bits(), prefix[i].to_bits(), "n={n} i={i}");
            }
            // The returned mask flags exactly the rows holding a nonzero.
            for v in 0..8 {
                let has = prefix[v * 8..(v + 1) * 8].iter().any(|&x| x != 0.0);
                assert_eq!(mask & (1 << v) != 0, has, "n={n} row={v}");
            }
        }
    }

    #[test]
    fn quantize_dequantize_bounded_error() {
        let table = scale_table(&BASE_LUMA, 75).unwrap();
        let mut freq = [0.0f32; 64];
        for (i, v) in freq.iter_mut().enumerate() {
            *v = ((i as f32) - 32.0) * 7.3;
        }
        let mut coefs = [0i16; 64];
        quantize_zigzag(&freq, &table, &mut coefs);
        let mut back = [0.0f32; 64];
        dequantize_zigzag(&coefs, &table, &mut back);
        for i in 0..64 {
            let qi = table[i] as f32;
            assert!((freq[i] - back[i]).abs() <= qi / 2.0 + 1e-3, "i={i}");
        }
    }
}
