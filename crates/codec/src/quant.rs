//! Quantization tables and zig-zag coefficient ordering.
//!
//! The base tables are the ITU-T T.81 (JPEG) Annex K luminance/chrominance
//! tables; quality scaling follows the libjpeg convention so that sjpg's
//! `q=75` / `q=95` settings degrade fidelity comparably to JPEG's.

use crate::dct::BLOCK;
use crate::error::{Error, Result};

/// Annex K.1 luminance quantization table (raster order).
pub const BASE_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Annex K.2 chrominance quantization table (raster order).
pub const BASE_CHROMA: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Scales a base table for a quality setting in 1..=100 (libjpeg rule).
pub fn scale_table(base: &[u16; 64], quality: u8) -> Result<[u16; 64]> {
    if quality == 0 || quality > 100 {
        return Err(Error::BadQuality(quality));
    }
    let q = quality as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - q * 2 };
    let mut out = [0u16; 64];
    for (o, &b) in out.iter_mut().zip(base.iter()) {
        let v = (b as i32 * scale + 50) / 100;
        *o = v.clamp(1, 255) as u16;
    }
    Ok(out)
}

/// Zig-zag scan order: `ZIGZAG[k]` is the raster index of the k-th
/// coefficient in zig-zag order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Quantizes a frequency-domain block into zig-zag-ordered integers.
pub fn quantize_zigzag(freq: &[f32; BLOCK * BLOCK], table: &[u16; 64], out: &mut [i16; 64]) {
    for (k, &raster) in ZIGZAG.iter().enumerate() {
        let q = table[raster] as f32;
        out[k] = (freq[raster] / q).round() as i16;
    }
}

/// Dequantizes zig-zag coefficients back into a raster frequency block.
pub fn dequantize_zigzag(coefs: &[i16; 64], table: &[u16; 64], out: &mut [f32; BLOCK * BLOCK]) {
    for (k, &raster) in ZIGZAG.iter().enumerate() {
        out[raster] = coefs[k] as f32 * table[raster] as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Spot-check the canonical start of the pattern.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
    }

    #[test]
    fn quality_scaling_monotone() {
        let q95 = scale_table(&BASE_LUMA, 95).unwrap();
        let q75 = scale_table(&BASE_LUMA, 75).unwrap();
        let q20 = scale_table(&BASE_LUMA, 20).unwrap();
        for i in 0..64 {
            assert!(q95[i] <= q75[i]);
            assert!(q75[i] <= q20[i]);
            assert!(q95[i] >= 1);
        }
    }

    #[test]
    fn quality_100_is_near_lossless() {
        let t = scale_table(&BASE_LUMA, 100).unwrap();
        assert!(t.iter().all(|&v| v == 1));
    }

    #[test]
    fn bad_quality_rejected() {
        assert!(scale_table(&BASE_LUMA, 0).is_err());
        assert!(scale_table(&BASE_LUMA, 101).is_err());
    }

    #[test]
    fn quantize_dequantize_bounded_error() {
        let table = scale_table(&BASE_LUMA, 75).unwrap();
        let mut freq = [0.0f32; 64];
        for (i, v) in freq.iter_mut().enumerate() {
            *v = ((i as f32) - 32.0) * 7.3;
        }
        let mut coefs = [0i16; 64];
        quantize_zigzag(&freq, &table, &mut coefs);
        let mut back = [0.0f32; 64];
        dequantize_zigzag(&coefs, &table, &mut back);
        for i in 0..64 {
            let qi = table[i] as f32;
            assert!((freq[i] - back[i]).abs() <= qi / 2.0 + 1e-3, "i={i}");
        }
    }
}
