//! sjpg — a from-scratch DCT block image codec with JPEG's cost anatomy.
//!
//! The pipeline matches JPEG baseline: RGB→YCbCr, 8×8 block DCT,
//! quality-scaled quantization (Annex-K tables), zig-zag + DC-DPCM +
//! AC run-length magnitude coding, canonical Huffman entropy coding with
//! per-image optimal tables. Chroma is stored either at full resolution
//! (4:4:4, 8×8 MCUs of three blocks) or subsampled 2× per axis
//! (4:2:0, 16×16 MCUs of four luma blocks + Cb + Cr) — see [`Chroma`].
//!
//! Two features exist specifically for the paper's partial-decoding
//! optimizations (§6.4, Figure 3, Algorithm 1):
//!
//! * every MCU row is byte-aligned and indexed in the header (the moral
//!   equivalent of JPEG restart markers + a tile index), so a decoder can
//!   **seek past rows** outside a region of interest, and
//! * within a row, blocks left of the ROI are entropy-decoded (the stream is
//!   sequential) but skip dequantize+IDCT+color conversion, and decoding
//!   **stops early** after the last ROI column / row.
//!
//! ## Decode hot path
//!
//! The MCU-row index doubles as a **parallel-decode invariant**: DC
//! predictors reset at every row start, so rows are data-independent and
//! [`DecodeOptions::workers`] can fan contiguous row *bands* out to scoped
//! threads, each with its own bit reader and disjoint output slice. Inside a
//! band, the IDCT and YCbCr→RGB conversion run through lane-batched kernels
//! ([`crate::dct::inverse_dct_scaled_vec`],
//! [`smol_imgproc::ops::colorspace::ycbcr_row_to_rgb`]) that are
//! **bit-identical** to the scalar reference (set
//! [`DecodeOptions::scalar_kernels`] to decode through the scalar oracle
//! instead — benches and proptests compare the two).

use crate::bitio::{BitReader, BitWriter, FastCursor};
use crate::dct::{
    forward_dct, inverse_dct_scaled, inverse_dct_scaled_vec_masked, scaled_idct_macs, BLOCK,
    FULL_IDCT_MACS,
};
use crate::error::{Error, Result};
use crate::huffman::HuffmanTable;
use crate::quant::{
    dequantize_zigzag, dequantize_zigzag_prefix, quantize_zigzag, scale_table, BASE_CHROMA,
    BASE_LUMA,
};
use crate::Chroma;
use bytes::Bytes;
use smol_imgproc::ops::colorspace::{rgb_pixel_to_ycbcr, ycbcr_pixel_to_rgb, ycbcr_row_to_rgb};
use smol_imgproc::{ImageU8, Rect};

const MAGIC: u32 = 0x534A_5047; // "SJPG"
/// Bitstream version. v2 added the chroma-mode byte (4:2:0 subsampling).
const VERSION: u32 = 2;
const DC_ALPHABET: usize = 16;
const AC_ALPHABET: usize = 256;
const EOB: u16 = 0x00;
const ZRL: u16 = 0xF0;

/// Work counters filled in by decode calls; used by tests and benches to
/// verify that partial decoding actually skips work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DecodeStats {
    /// Huffman symbols read (entropy-decode effort).
    pub symbols_decoded: u64,
    /// Inverse-transform compute effort in full 8×8 IDCT equivalents. A
    /// fully-decoded block counts 1; a reduced-resolution block at scale
    /// `n` counts `2n³ / 2·8³` of a block (the MAC ratio), accumulated
    /// exactly via [`DecodeStats::idct_macs`] and floor-divided.
    pub blocks_idct: u64,
    /// Pixels color-converted and written to the output.
    pub pixels_written: u64,
    /// MCU rows skipped entirely via the row index.
    pub rows_skipped: u64,
    /// Exact multiply-accumulate count spent in inverse transforms; the
    /// raw quantity behind `blocks_idct`.
    pub idct_macs: u64,
}

impl DecodeStats {
    /// Folds another band's counters into this one (row-band parallel
    /// decode sums per-band stats; `rows_skipped` is global, not summed).
    fn absorb(&mut self, part: DecodeStats) {
        self.symbols_decoded += part.symbols_decoded;
        self.pixels_written += part.pixels_written;
        self.idct_macs += part.idct_macs;
    }
}

/// Decode-path configuration: row-band parallelism and kernel selection.
///
/// The default decodes sequentially through the vectorized kernels. Every
/// combination of `workers` and `scalar_kernels` produces **bit-identical
/// output**: bands are data-independent (DC predictors reset per MCU row)
/// and the vector kernels preserve the scalar kernels' per-lane reduction
/// order exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOptions {
    /// Row bands decoded concurrently (clamped to the MCU-row count);
    /// `0`/`1` decode sequentially on the calling thread.
    pub workers: usize,
    /// Route IDCT and color conversion through the scalar reference
    /// kernels instead of the lane-batched ones (the correctness oracle
    /// for benches and equivalence tests).
    pub scalar_kernels: bool,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        DecodeOptions {
            workers: 1,
            scalar_kernels: false,
        }
    }
}

impl DecodeOptions {
    /// Sequential decode through the vectorized kernels (the default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode with up to `workers` parallel row bands.
    pub fn with_workers(workers: usize) -> Self {
        DecodeOptions {
            workers,
            ..Self::default()
        }
    }

    /// The scalar sequential reference configuration (the baseline the
    /// `decode_hotpath` bench measures against).
    pub fn scalar_reference() -> Self {
        DecodeOptions {
            workers: 1,
            scalar_kernels: true,
        }
    }
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy)]
pub struct SjpgEncoder {
    pub quality: u8,
    pub chroma: Chroma,
}

impl SjpgEncoder {
    /// A 4:4:4 encoder at `quality` (the historical default).
    pub fn new(quality: u8) -> Self {
        SjpgEncoder {
            quality,
            chroma: Chroma::C444,
        }
    }

    /// An encoder with an explicit chroma mode.
    pub fn with_chroma(quality: u8, chroma: Chroma) -> Self {
        SjpgEncoder { quality, chroma }
    }

    /// Encodes an RGB image.
    pub fn encode(&self, img: &ImageU8) -> Result<Bytes> {
        if img.channels() != 3 {
            return Err(Error::Image(smol_imgproc::Error::UnsupportedChannels {
                channels: img.channels(),
                op: "sjpg::encode",
            }));
        }
        if img.width() == 0 || img.height() == 0 {
            return Err(Error::BadHeader("zero-sized image".into()));
        }
        let luma_q = scale_table(&BASE_LUMA, self.quality)?;
        let chroma_q = scale_table(&BASE_CHROMA, self.quality)?;

        let planes = Planes::from_rgb(img, self.chroma);
        let mcu = self.chroma.mcu();
        let mrows = img.height().div_ceil(mcu);
        let mcols = img.width().div_ceil(mcu);
        let per_mcu = self.chroma.blocks_per_mcu();

        // Pass 1: transform + quantize all blocks, gather symbol statistics.
        let mut blocks: Vec<[i16; 64]> = Vec::with_capacity(mrows * mcols * per_mcu);
        let mut dc_freq = [0u64; DC_ALPHABET];
        let mut ac_freq = [0u64; AC_ALPHABET];
        let mut pixel_block = [0.0f32; 64];
        let mut freq_block = [0.0f32; 64];
        for by in 0..mrows {
            let mut dc_pred = [0i16; 3];
            for bx in 0..mcols {
                let (sched, n) = mcu_schedule(self.chroma, bx, by);
                for &(comp, pbx, pby) in &sched[..n] {
                    planes.extract_block(comp, pbx, pby, &mut pixel_block);
                    forward_dct(&pixel_block, &mut freq_block);
                    let table = if comp == 0 { &luma_q } else { &chroma_q };
                    let mut coefs = [0i16; 64];
                    quantize_zigzag(&freq_block, table, &mut coefs);
                    tally_block(&coefs, dc_pred[comp], &mut dc_freq, &mut ac_freq);
                    dc_pred[comp] = coefs[0];
                    blocks.push(coefs);
                }
            }
        }
        let dc_table = HuffmanTable::from_frequencies(&dc_freq, 16)?;
        let ac_table = HuffmanTable::from_frequencies(&ac_freq, 16)?;

        // Pass 2: entropy-encode the body, byte-aligning each MCU row and
        // recording its byte offset.
        let mut body = BitWriter::with_capacity(img.pixel_count());
        let mut row_offsets: Vec<u32> = Vec::with_capacity(mrows);
        let mut bi = 0usize;
        for by in 0..mrows {
            body.align_byte();
            row_offsets.push((body.bit_pos() / 8) as u32);
            let mut dc_pred = [0i16; 3];
            for bx in 0..mcols {
                let (sched, n) = mcu_schedule(self.chroma, bx, by);
                for &(comp, _, _) in &sched[..n] {
                    let coefs = &blocks[bi];
                    bi += 1;
                    encode_block(&mut body, coefs, dc_pred[comp], &dc_table, &ac_table)?;
                    dc_pred[comp] = coefs[0];
                }
            }
        }
        let body_bytes = body.finish();

        // Header.
        let mut head = BitWriter::new();
        head.put(MAGIC, 32);
        head.put(VERSION, 8);
        head.put(img.width() as u32, 16);
        head.put(img.height() as u32, 16);
        head.put(self.quality as u32, 8);
        head.put(chroma_tag(self.chroma), 8);
        dc_table.write_spec(&mut head);
        ac_table.write_spec(&mut head);
        head.put(row_offsets.len() as u32, 16);
        for &off in &row_offsets {
            head.put(off, 32);
        }
        let mut out = head.finish();
        out.extend_from_slice(&body_bytes);
        Ok(Bytes::from(out))
    }
}

fn chroma_tag(chroma: Chroma) -> u32 {
    match chroma {
        Chroma::C444 => 0,
        Chroma::C420 => 1,
    }
}

/// Component planes the encoder transforms: full-resolution luma plus
/// chroma at either full (4:4:4) or half (4:2:0) resolution. 4:2:0 chroma
/// is a rounded 2×2 box average with edge replication at odd dimensions.
struct Planes {
    y: Vec<u8>,
    cb: Vec<u8>,
    cr: Vec<u8>,
    w: usize,
    h: usize,
    cw: usize,
    ch: usize,
}

impl Planes {
    fn from_rgb(img: &ImageU8, chroma: Chroma) -> Planes {
        let (w, h) = (img.width(), img.height());
        let mut y = vec![0u8; w * h];
        match chroma {
            Chroma::C444 => {
                let mut cb = vec![0u8; w * h];
                let mut cr = vec![0u8; w * h];
                for yy in 0..h {
                    for x in 0..w {
                        let (l, b, r) = rgb_pixel_to_ycbcr(
                            img.at(x, yy, 0),
                            img.at(x, yy, 1),
                            img.at(x, yy, 2),
                        );
                        let i = yy * w + x;
                        y[i] = l;
                        cb[i] = b;
                        cr[i] = r;
                    }
                }
                Planes {
                    y,
                    cb,
                    cr,
                    w,
                    h,
                    cw: w,
                    ch: h,
                }
            }
            Chroma::C420 => {
                for yy in 0..h {
                    for x in 0..w {
                        let (l, _, _) = rgb_pixel_to_ycbcr(
                            img.at(x, yy, 0),
                            img.at(x, yy, 1),
                            img.at(x, yy, 2),
                        );
                        y[yy * w + x] = l;
                    }
                }
                let (cw, ch) = (w.div_ceil(2), h.div_ceil(2));
                let mut cb = vec![0u8; cw * ch];
                let mut cr = vec![0u8; cw * ch];
                for cy in 0..ch {
                    for cx in 0..cw {
                        let mut sb = 0u32;
                        let mut sr = 0u32;
                        for (dy, dx) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                            let sx = (2 * cx + dx).min(w - 1);
                            let sy = (2 * cy + dy).min(h - 1);
                            let (_, b, r) = rgb_pixel_to_ycbcr(
                                img.at(sx, sy, 0),
                                img.at(sx, sy, 1),
                                img.at(sx, sy, 2),
                            );
                            sb += b as u32;
                            sr += r as u32;
                        }
                        cb[cy * cw + cx] = ((sb + 2) >> 2) as u8;
                        cr[cy * cw + cx] = ((sr + 2) >> 2) as u8;
                    }
                }
                Planes {
                    y,
                    cb,
                    cr,
                    w,
                    h,
                    cw,
                    ch,
                }
            }
        }
    }

    /// Extracts one 8×8 level-shifted block from a component plane at block
    /// coordinates `(bx, by)` of that plane, replicating edge samples.
    fn extract_block(&self, comp: usize, bx: usize, by: usize, out: &mut [f32; 64]) {
        let (plane, pw, ph) = match comp {
            0 => (&self.y, self.w, self.h),
            1 => (&self.cb, self.cw, self.ch),
            _ => (&self.cr, self.cw, self.ch),
        };
        for dy in 0..BLOCK {
            let sy = (by * BLOCK + dy).min(ph - 1);
            for dx in 0..BLOCK {
                let sx = (bx * BLOCK + dx).min(pw - 1);
                out[dy * BLOCK + dx] = plane[sy * pw + sx] as f32 - 128.0;
            }
        }
    }
}

/// Stream-order component blocks of one MCU: `(component, plane_bx,
/// plane_by)` in 8×8 block coordinates of that component's plane. 4:4:4
/// MCUs are one block per component; 4:2:0 MCUs carry four luma blocks
/// (2×2 grid, raster order) followed by Cb and Cr at half resolution.
fn mcu_schedule(chroma: Chroma, bx: usize, by: usize) -> ([(usize, usize, usize); 6], usize) {
    match chroma {
        Chroma::C444 => (
            [
                (0, bx, by),
                (1, bx, by),
                (2, bx, by),
                (0, 0, 0),
                (0, 0, 0),
                (0, 0, 0),
            ],
            3,
        ),
        Chroma::C420 => (
            [
                (0, 2 * bx, 2 * by),
                (0, 2 * bx + 1, 2 * by),
                (0, 2 * bx, 2 * by + 1),
                (0, 2 * bx + 1, 2 * by + 1),
                (1, bx, by),
                (2, bx, by),
            ],
            6,
        ),
    }
}

/// Parsed header with entropy tables and the MCU-row index.
#[derive(Debug, Clone)]
pub struct SjpgHeader {
    pub width: usize,
    pub height: usize,
    pub quality: u8,
    pub chroma: Chroma,
    pub row_offsets: Vec<u32>,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
    /// Byte offset where the body begins.
    body_start: usize,
}

impl SjpgHeader {
    /// Parses the header (tables + index) without touching the body.
    pub fn parse(data: &[u8]) -> Result<Self> {
        let mut r = BitReader::new(data);
        if r.bits(32)? != MAGIC {
            return Err(Error::BadMagic { expected: "SJPG" });
        }
        if r.bits(8)? != VERSION {
            return Err(Error::BadHeader("unsupported version".into()));
        }
        let width = r.bits(16)? as usize;
        let height = r.bits(16)? as usize;
        let quality = r.bits(8)? as u8;
        if quality == 0 || quality > 100 {
            // Reject up front with the same typed error the quantizer uses:
            // a corrupted quality byte must not reach table scaling (or,
            // worse, a hand-rolled divide) downstream.
            return Err(Error::BadQuality(quality));
        }
        let chroma = match r.bits(8)? {
            0 => Chroma::C444,
            1 => Chroma::C420,
            tag => return Err(Error::BadHeader(format!("unknown chroma mode {tag}"))),
        };
        if width == 0 || height == 0 {
            return Err(Error::BadHeader("zero-sized image".into()));
        }
        let dc_table = HuffmanTable::read_spec(&mut r, DC_ALPHABET)?;
        let ac_table = HuffmanTable::read_spec(&mut r, AC_ALPHABET)?;
        let n_rows = r.bits(16)? as usize;
        if n_rows != height.div_ceil(chroma.mcu()) {
            return Err(Error::BadHeader(format!(
                "row index has {n_rows} entries for height {height}"
            )));
        }
        let mut row_offsets = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            row_offsets.push(r.bits(32)?);
        }
        r.align_byte();
        let body_start = (r.bit_pos() / 8) as usize;
        Ok(SjpgHeader {
            width,
            height,
            quality,
            chroma,
            row_offsets,
            dc_table,
            ac_table,
            body_start,
        })
    }

    /// MCU edge in pixels (8 for 4:4:4, 16 for 4:2:0).
    pub fn mcu(&self) -> usize {
        self.chroma.mcu()
    }
}

/// Reads only the image dimensions from an encoded buffer.
pub fn peek_dims(data: &[u8]) -> Result<(usize, usize)> {
    let mut r = BitReader::new(data);
    if r.bits(32)? != MAGIC {
        return Err(Error::BadMagic { expected: "SJPG" });
    }
    let _ = r.bits(8)?;
    let w = r.bits(16)? as usize;
    let h = r.bits(16)? as usize;
    Ok((w, h))
}

/// Fully decodes an sjpg buffer.
pub fn decode(data: &[u8]) -> Result<ImageU8> {
    decode_with_stats(data).map(|(img, _)| img)
}

/// Fully decodes, returning work counters.
pub fn decode_with_stats(data: &[u8]) -> Result<(ImageU8, DecodeStats)> {
    decode_with_opts(data, DecodeOptions::default())
}

/// Fully decodes with explicit decode options (kernel selection + row-band
/// parallelism). Output is bit-identical across all option combinations.
pub fn decode_with_opts(data: &[u8], opts: DecodeOptions) -> Result<(ImageU8, DecodeStats)> {
    let header = SjpgHeader::parse(data)?;
    let full = Rect::new(0, 0, header.width, header.height);
    decode_region(data, &header, full, opts)
}

/// Decodes only the macroblock-aligned region covering `roi`
/// (Figure 3, left: macroblock-based partial decoding).
///
/// Returns the decoded sub-image together with the aligned region it covers
/// (callers crop to the exact ROI afterwards if needed). The alignment unit
/// is the MCU edge: 8 px for 4:4:4, 16 px for 4:2:0.
pub fn decode_roi(data: &[u8], roi: Rect) -> Result<(ImageU8, Rect, DecodeStats)> {
    let header = SjpgHeader::parse(data)?;
    if !roi.fits_in(header.width, header.height) || roi.w == 0 || roi.h == 0 {
        return Err(Error::BadRegion(format!(
            "roi {roi:?} invalid for {}x{}",
            header.width, header.height
        )));
    }
    let aligned = roi.align_to_blocks(header.mcu(), header.width, header.height);
    let (img, stats) = decode_region(data, &header, aligned, DecodeOptions::default())?;
    Ok((img, aligned, stats))
}

/// Decodes only the top `n_rows` pixel rows (raster-order early stopping,
/// Figure 3, right).
pub fn decode_rows(data: &[u8], n_rows: usize) -> Result<(ImageU8, DecodeStats)> {
    let header = SjpgHeader::parse(data)?;
    let mcu = header.mcu();
    let h = n_rows.min(header.height).max(1);
    let region = Rect::new(0, 0, header.width, h.div_ceil(mcu) * mcu).align_to_blocks(
        mcu,
        header.width,
        header.height,
    );
    decode_region(data, &header, region, DecodeOptions::default())
}

/// Output dimensions of a reduced-resolution decode of a `w × h` image at
/// `factor` (each 8×8 block reconstructs to an `8/factor`-edge patch; edge
/// blocks are clipped to the scaled image bounds).
pub fn reduced_dims(w: usize, h: usize, factor: usize) -> (usize, usize) {
    (w.div_ceil(factor), h.div_ceil(factor))
}

/// Decodes directly to `1/factor` resolution via a scaled IDCT
/// (multi-resolution decoding, Table 4): only the top-left
/// `(8/factor) × (8/factor)` coefficients of each block feed an
/// `8/factor`-point inverse transform, so the downsample is fused into the
/// decoder instead of being a post-decode resize. `factor` must be 1
/// (full decode), 2, 4, or 8 (DC-only).
///
/// The output approximates a box-downsample of the full decode at the same
/// geometry; `DecodeStats::idct_macs`/`blocks_idct` prove the skipped
/// transform work (`2n³` MACs per block instead of `2·8³`). For 4:2:0
/// streams the chroma blocks reconstruct at `min(8, 16/factor)` points per
/// axis, so at factor ≥ 2 the half-resolution chroma patch exactly tiles
/// the MCU's output patch with no upsampling step at all.
pub fn decode_scaled(data: &[u8], factor: usize) -> Result<(ImageU8, DecodeStats)> {
    decode_scaled_opts(data, factor, DecodeOptions::default())
}

/// [`decode_scaled`] with explicit decode options.
pub fn decode_scaled_opts(
    data: &[u8],
    factor: usize,
    opts: DecodeOptions,
) -> Result<(ImageU8, DecodeStats)> {
    if factor == 1 {
        return decode_with_opts(data, opts);
    }
    if !matches!(factor, 2 | 4 | 8) {
        return Err(Error::BadRegion(format!(
            "reduced-resolution factor must be 1, 2, 4, or 8, got {factor}"
        )));
    }
    let header = SjpgHeader::parse(data)?;
    let (out_w, out_h) = reduced_dims(header.width, header.height, factor);
    let geom = Geometry::new(&header, factor, Rect::new(0, 0, out_w, out_h));
    let rows = (0, header.row_offsets.len());
    let cols = (0, geom.mcols);
    run_bands(&data[header.body_start..], &header, geom, rows, cols, opts)
}

/// Raw accumulators of a sampled entropy-only difficulty scan (the
/// bitstream side of `smol_codec::signal`). Everything is in quantized
/// coefficient units: the scan never dequantizes, never transforms, and
/// never writes a pixel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct SignalScan {
    /// Entropy symbols decoded across the sampled rows.
    pub symbols: u64,
    /// Luma blocks the scan visited.
    pub luma_blocks: u64,
    /// Variance of the sampled luma DC coefficients (quantized units²).
    pub dc_variance: f64,
    /// Mean per-luma-block AC energy `Σ c_k²` over the coded prefix
    /// (quantized units²).
    pub ac_energy: f64,
}

/// Entropy-decodes a small, evenly-spread sample of MCU rows (at most
/// `max_rows`) straight off the encoded bitstream, accumulating the
/// difficulty accumulators without any dequantization, IDCT, or pixel
/// writes. The row index makes the seek free; DC prediction resets per
/// row, so each sampled row is self-contained.
///
/// The returned [`DecodeStats`] is the proof of cheapness: only
/// `symbols_decoded` and `rows_skipped` may move — `blocks_idct`,
/// `pixels_written`, and `idct_macs` stay zero by construction (pinned
/// by the workspace proptests).
pub(crate) fn scan_signal(data: &[u8], max_rows: usize) -> Result<(SignalScan, DecodeStats)> {
    let header = SjpgHeader::parse(data)?;
    let n_rows = header.row_offsets.len();
    let sample = max_rows.clamp(1, n_rows);
    let mcols = header.width.div_ceil(header.mcu());
    let body = &data[header.body_start..];

    let mut stats = DecodeStats::default();
    let mut scan = SignalScan::default();
    let mut dc_sum = 0.0f64;
    let mut dc_sumsq = 0.0f64;
    let mut ac_total = 0.0f64;
    let mut coefs = [0i16; 64];

    let mut r = BitReader::new(body);
    for i in 0..sample {
        // Evenly spread, first row always included; `sample == n_rows`
        // degenerates to every row.
        let by = i * n_rows / sample;
        r.seek_bits(header.row_offsets[by] as u64 * 8)?;
        let mut dc_pred = [0i16; 3];
        for bx in 0..mcols {
            let (sched, n) = mcu_schedule(header.chroma, bx, by);
            for &(comp, _, _) in &sched[..n] {
                let k = decode_block(
                    &mut r,
                    &header.dc_table,
                    &header.ac_table,
                    dc_pred[comp],
                    &mut coefs,
                    &mut stats,
                )?;
                dc_pred[comp] = coefs[0];
                if comp == 0 {
                    scan.luma_blocks += 1;
                    let dc = coefs[0] as f64;
                    dc_sum += dc;
                    dc_sumsq += dc * dc;
                    for &c in &coefs[1..k] {
                        ac_total += (c as f64) * (c as f64);
                    }
                }
            }
        }
    }
    stats.rows_skipped += (n_rows - sample) as u64;
    scan.symbols = stats.symbols_decoded;
    if scan.luma_blocks > 0 {
        let n = scan.luma_blocks as f64;
        let mean = dc_sum / n;
        scan.dc_variance = (dc_sumsq / n - mean * mean).max(0.0);
        scan.ac_energy = ac_total / n;
    }
    Ok((scan, stats))
}

// ---------------------------------------------------------------------------
// Unified band decoder
// ---------------------------------------------------------------------------

/// Decode-side geometry shared by every factor/chroma combination.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    chroma: Chroma,
    factor: usize,
    /// Output patch edge per MCU: `mcu / factor`.
    patch: usize,
    /// Luma block reconstruction edge: `8 / factor`.
    ny: usize,
    /// Chroma block reconstruction edge (4:4:4: `ny`; 4:2:0:
    /// `min(8, 16/factor)` — equals `patch` for factor ≥ 2).
    nc: usize,
    /// MCUs per row.
    mcols: usize,
    /// Region written, in *output* coordinates (the output image is
    /// `oregion.w × oregion.h`; for reduced decodes this is the reduced
    /// full image, for ROI decodes the aligned full-resolution region).
    oregion: Rect,
}

impl Geometry {
    fn new(header: &SjpgHeader, factor: usize, oregion: Rect) -> Geometry {
        let mcu = header.mcu();
        Geometry {
            chroma: header.chroma,
            factor,
            patch: mcu / factor,
            ny: BLOCK / factor,
            nc: match header.chroma {
                Chroma::C444 => BLOCK / factor,
                Chroma::C420 => (2 * BLOCK / factor).min(BLOCK),
            },
            mcols: header.width.div_ceil(mcu),
            oregion,
        }
    }
}

/// Core region decoder (factor 1). `region` must be MCU-aligned (except at
/// image edges where it is clamped).
fn decode_region(
    data: &[u8],
    header: &SjpgHeader,
    region: Rect,
    opts: DecodeOptions,
) -> Result<(ImageU8, DecodeStats)> {
    let mcu = header.mcu();
    let geom = Geometry::new(header, 1, region);
    let by0 = region.y / mcu;
    let by1 = region.y_end().div_ceil(mcu).min(header.row_offsets.len());
    let bx0 = region.x / mcu;
    let bx1 = region.x_end().div_ceil(mcu).min(geom.mcols);
    run_bands(
        &data[header.body_start..],
        header,
        geom,
        (by0, by1),
        (bx0, bx1),
        opts,
    )
}

/// Decodes MCU rows `[rows.0, rows.1)`, splitting them into contiguous
/// bands across `opts.workers` scoped threads. Each band owns a disjoint
/// slice of the output buffer and its own bit reader; DC predictors reset
/// at every row start, so bands never share decode state and the result is
/// bit-identical to a sequential decode.
fn run_bands(
    body: &[u8],
    header: &SjpgHeader,
    geom: Geometry,
    rows: (usize, usize),
    cols: (usize, usize),
    opts: DecodeOptions,
) -> Result<(ImageU8, DecodeStats)> {
    let (by0, by1) = rows;
    let (out_w, out_h) = (geom.oregion.w, geom.oregion.h);
    let mut out = ImageU8::zeros(out_w, out_h, 3);
    let mut stats = DecodeStats {
        rows_skipped: (header.row_offsets.len() - (by1 - by0)) as u64,
        ..DecodeStats::default()
    };
    let n_rows = by1 - by0;
    let workers = opts.workers.max(1).min(n_rows.max(1));
    if workers <= 1 {
        let part = decode_band(
            body,
            header,
            geom,
            cols,
            (by0, by1),
            out.data_mut(),
            0,
            opts,
        )?;
        stats.absorb(part);
    } else {
        let mut results: Vec<Result<DecodeStats>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest = out.data_mut();
            for i in 0..workers {
                let r0 = by0 + i * n_rows / workers;
                let r1 = by0 + (i + 1) * n_rows / workers;
                if r0 == r1 {
                    continue;
                }
                let oy0 = (r0 - by0) * geom.patch;
                let oy1 = ((r1 - by0) * geom.patch).min(out_h);
                let (band, tail) = rest.split_at_mut((oy1 - oy0) * out_w * 3);
                rest = tail;
                handles.push(s.spawn(move || {
                    decode_band(body, header, geom, cols, (r0, r1), band, oy0, opts)
                }));
            }
            for h in handles {
                results.push(h.join().expect("sjpg decode band panicked"));
            }
        });
        for r in results {
            stats.absorb(r?);
        }
    }
    stats.blocks_idct = stats.idct_macs / FULL_IDCT_MACS;
    Ok((out, stats))
}

/// Decodes one contiguous band of MCU rows into its output slice.
/// `band_oy0` is the output row (within the output image) at which the
/// band's slice begins.
#[allow(clippy::too_many_arguments)]
fn decode_band(
    body: &[u8],
    header: &SjpgHeader,
    geom: Geometry,
    cols: (usize, usize),
    rows: (usize, usize),
    band: &mut [u8],
    band_oy0: usize,
    opts: DecodeOptions,
) -> Result<DecodeStats> {
    let luma_q = scale_table(&BASE_LUMA, header.quality)?;
    let chroma_q = scale_table(&BASE_CHROMA, header.quality)?;
    let (bx0, bx1) = cols;
    let n_luma = match geom.chroma {
        Chroma::C444 => 1,
        Chroma::C420 => 4,
    };
    let mut stats = DecodeStats::default();
    let mut r = BitReader::new(body);
    let mut coefs = [0i16; 64];
    let mut freq = [0.0f32; 64];
    let mut ybufs = [[0.0f32; 64]; 4];
    let mut cbuf = [0.0f32; 64];
    let mut crbuf = [0.0f32; 64];
    // Fast path: fully-decoded entropy tables, built once per band (the
    // build walks 2 × 4096 windows — microseconds against thousands of
    // blocks decoded through them).
    let tables =
        (!opts.scalar_kernels).then(|| FastTables::new(&header.dc_table, &header.ac_table));
    // Fast path: MCUs land in planar u8 row strips spanning the full
    // output width; color conversion runs once per completed image row so
    // [`ycbcr_row_to_rgb`] sees long contiguous rows instead of patch-wide
    // fragments.
    let reg = geom.oregion;
    let (mut ystrip, mut cbstrip, mut crstrip) = if opts.scalar_kernels {
        (Vec::new(), Vec::new(), Vec::new())
    } else {
        (
            vec![0u8; reg.w * geom.patch],
            vec![0u8; reg.w * geom.patch],
            vec![0u8; reg.w * geom.patch],
        )
    };
    for by in rows.0..rows.1 {
        // Seek directly to the row's byte offset — rows are independent
        // (DC predictors reset per row, like JPEG restart intervals).
        r.seek_bits(header.row_offsets[by] as u64 * 8)?;
        let mut dc_pred = [0i16; 3];
        // One cursor serves the whole MCU row on the fast path: its bits
        // stay register-resident across blocks, and it syncs back to the
        // reader (surfacing truncation) once at row end.
        let mut cursor = (!opts.scalar_kernels).then(|| FastCursor::from_reader(&r));
        for bx in 0..bx1 {
            let in_roi = bx >= bx0;
            for ybuf in ybufs.iter_mut().take(n_luma) {
                let coded = match cursor.as_mut() {
                    Some(c) => decode_block_fast(
                        c,
                        tables.as_ref().unwrap(),
                        dc_pred[0],
                        &mut coefs,
                        &mut stats,
                    )?,
                    None => {
                        coefs.fill(0);
                        decode_block(
                            &mut r,
                            &header.dc_table,
                            &header.ac_table,
                            dc_pred[0],
                            &mut coefs,
                            &mut stats,
                        )?
                    }
                };
                dc_pred[0] = coefs[0];
                if in_roi {
                    dequant_idct(&coefs, coded, &luma_q, &mut freq, geom.ny, ybuf, opts);
                    stats.idct_macs += scaled_idct_macs(geom.ny);
                }
            }
            for (comp, buf) in [(1usize, &mut cbuf), (2, &mut crbuf)] {
                let coded = match cursor.as_mut() {
                    Some(c) => decode_block_fast(
                        c,
                        tables.as_ref().unwrap(),
                        dc_pred[comp],
                        &mut coefs,
                        &mut stats,
                    )?,
                    None => {
                        coefs.fill(0);
                        decode_block(
                            &mut r,
                            &header.dc_table,
                            &header.ac_table,
                            dc_pred[comp],
                            &mut coefs,
                            &mut stats,
                        )?
                    }
                };
                dc_pred[comp] = coefs[0];
                if in_roi {
                    dequant_idct(&coefs, coded, &chroma_q, &mut freq, geom.nc, buf, opts);
                    stats.idct_macs += scaled_idct_macs(geom.nc);
                }
            }
            if in_roi {
                if opts.scalar_kernels {
                    write_mcu(
                        &geom, &ybufs, &cbuf, &crbuf, bx, by, band, band_oy0, &mut stats,
                    );
                } else {
                    write_mcu_strip(
                        &geom,
                        &ybufs,
                        &cbuf,
                        &crbuf,
                        bx,
                        by,
                        &mut ystrip,
                        &mut cbstrip,
                        &mut crstrip,
                        &mut stats,
                    );
                }
            }
        }
        if let Some(c) = cursor.take() {
            // Row-end sync: repositions the reader and errors if the
            // cursor's zero-padded reads ran past the end of the stream.
            c.sync(&mut r)?;
        }
        if !opts.scalar_kernels {
            // Flush the completed MCU row: full-width color conversion per
            // image row. The MCUs above covered every column of each
            // in-region row exactly once, so the strips are fully written.
            for dy in 0..geom.patch {
                let oy = by * geom.patch + dy;
                if oy < reg.y || oy >= reg.y_end() {
                    continue;
                }
                let row = oy - reg.y - band_oy0;
                let off = row * reg.w * 3;
                ycbcr_row_to_rgb(
                    &ystrip[dy * reg.w..(dy + 1) * reg.w],
                    &cbstrip[dy * reg.w..(dy + 1) * reg.w],
                    &crstrip[dy * reg.w..(dy + 1) * reg.w],
                    &mut band[off..off + 3 * reg.w],
                );
            }
        }
        // Early stop within the row: blocks right of bx1 are never read —
        // the next iteration seeks to the next row offset.
    }
    Ok(stats)
}

/// Dequantize-then-IDCT for one block. The reference path reproduces the
/// seed implementation exactly — dense dequantization over a pre-zeroed
/// block, scalar transform — and serves as the baseline oracle. The fast
/// path fuses: prefix dequantization over only the coded coefficients,
/// whose free byproduct (the nonzero-row mask) drives zero-row skipping
/// in the vectorized transform.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dequant_idct(
    coefs: &[i16; 64],
    coded: usize,
    table: &[u16; 64],
    freq: &mut [f32; 64],
    n: usize,
    out: &mut [f32; 64],
    opts: DecodeOptions,
) {
    if opts.scalar_kernels {
        dequantize_zigzag(coefs, table, freq);
        inverse_dct_scaled(freq, n, out);
    } else {
        let row_mask = dequantize_zigzag_prefix(coefs, coded, table, freq);
        inverse_dct_scaled_vec_masked(freq, n, row_mask, out);
    }
}

/// Round-to-nearest reconstruction of one level-shifted sample. Rounding
/// (not truncation) matters: `as u8` on the raw float truncated toward
/// zero, a systematic ~0.5-LSB dark bias on every decoded pixel.
#[inline]
fn to_u8(v: f32) -> u8 {
    (v + 128.0).round().clamp(0.0, 255.0) as u8
}

/// Identical to [`to_u8`] for every input, compiled down to a single
/// saturating convert instead of a libm-style round: `as u8` clamps to
/// `0..=255` and maps NaN to 0, and round-half-up (`+0.5` then truncate)
/// only differs from round-half-away-from-zero below zero, where both
/// saturate to 0. Used on the fast decode path; the reference path keeps
/// the spelled-out rounding as the oracle.
#[inline]
fn to_u8_fast(v: f32) -> u8 {
    (v + 128.5) as u8
}

#[inline]
fn luma_sample(geom: &Geometry, ybufs: &[[f32; 64]; 4], dy: usize, dx: usize) -> f32 {
    match geom.chroma {
        Chroma::C444 => ybufs[0][dy * geom.ny + dx],
        Chroma::C420 => {
            let b = (dy / geom.ny) * 2 + dx / geom.ny;
            ybufs[b][(dy % geom.ny) * geom.ny + (dx % geom.ny)]
        }
    }
}

#[inline]
fn chroma_sample(geom: &Geometry, buf: &[f32; 64], dy: usize, dx: usize) -> f32 {
    match geom.chroma {
        Chroma::C444 => buf[dy * geom.nc + dx],
        Chroma::C420 => {
            if geom.factor == 1 {
                // Full decode: replicate-upsample the half-resolution plane.
                buf[(dy / 2) * BLOCK + dx / 2]
            } else {
                // factor ≥ 2: nc == patch, the chroma patch tiles exactly.
                buf[dy * geom.nc + dx]
            }
        }
    }
}

/// Writes one decoded MCU's output patch into the band slice, converting
/// to RGB and clipping to the output region. Reference path only: one
/// sample at a time through the scalar kernels, as the seed decoder did.
#[allow(clippy::too_many_arguments)]
fn write_mcu(
    geom: &Geometry,
    ybufs: &[[f32; 64]; 4],
    cbuf: &[f32; 64],
    crbuf: &[f32; 64],
    bx: usize,
    by: usize,
    band: &mut [u8],
    band_oy0: usize,
    stats: &mut DecodeStats,
) {
    let p = geom.patch;
    let reg = geom.oregion;
    let ox0 = bx * p;
    let dx0 = reg.x.saturating_sub(ox0).min(p);
    let dx1 = reg.x_end().min(ox0 + p).saturating_sub(ox0);
    if dx1 <= dx0 {
        return;
    }
    let cw = dx1 - dx0;
    let mut yrow = [0u8; 16];
    let mut cbrow = [0u8; 16];
    let mut crrow = [0u8; 16];
    for dy in 0..p {
        let oy = by * p + dy;
        if oy < reg.y || oy >= reg.y_end() {
            continue;
        }
        let row = oy - reg.y - band_oy0;
        let off = (row * reg.w + (ox0 + dx0 - reg.x)) * 3;
        let dst = &mut band[off..off + 3 * cw];
        for (i, dx) in (dx0..dx1).enumerate() {
            yrow[i] = to_u8(luma_sample(geom, ybufs, dy, dx));
            cbrow[i] = to_u8(chroma_sample(geom, cbuf, dy, dx));
            crrow[i] = to_u8(chroma_sample(geom, crbuf, dy, dx));
        }
        for (i, d) in dst.chunks_exact_mut(3).enumerate() {
            let (r, g, b) = ycbcr_pixel_to_rgb(yrow[i], cbrow[i], crrow[i]);
            d[0] = r;
            d[1] = g;
            d[2] = b;
        }
        stats.pixels_written += cw as u64;
    }
}

/// Fast-path counterpart of [`write_mcu`]: converts the MCU's samples to
/// u8 into *planar row strips* spanning the whole MCU row. Color
/// conversion then runs once per completed image row over the full strip
/// (see the flush in [`decode_band`]) — long contiguous rows instead of
/// ≤ 16-pixel segments, which is what lets [`ycbcr_row_to_rgb`]'s planar
/// lanes vectorize. Same per-sample conversion, same per-pixel color
/// math, so output is bit-identical to converting MCU-by-MCU.
#[allow(clippy::too_many_arguments)]
fn write_mcu_strip(
    geom: &Geometry,
    ybufs: &[[f32; 64]; 4],
    cbuf: &[f32; 64],
    crbuf: &[f32; 64],
    bx: usize,
    by: usize,
    ystrip: &mut [u8],
    cbstrip: &mut [u8],
    crstrip: &mut [u8],
    stats: &mut DecodeStats,
) {
    let p = geom.patch;
    let reg = geom.oregion;
    let ox0 = bx * p;
    let dx0 = reg.x.saturating_sub(ox0).min(p);
    let dx1 = reg.x_end().min(ox0 + p).saturating_sub(ox0);
    if dx1 <= dx0 {
        return;
    }
    let cw = dx1 - dx0;
    let x0 = ox0 + dx0 - reg.x;
    for dy in 0..p {
        let oy = by * p + dy;
        if oy < reg.y || oy >= reg.y_end() {
            continue;
        }
        let yrow = &mut ystrip[dy * reg.w + x0..dy * reg.w + x0 + cw];
        let cbrow = &mut cbstrip[dy * reg.w + x0..dy * reg.w + x0 + cw];
        let crrow = &mut crstrip[dy * reg.w + x0..dy * reg.w + x0 + cw];
        if geom.chroma == Chroma::C444 {
            // 4:4:4 rows are contiguous slices of the block buffers — a
            // straight-line convert loop the autovectorizer lifts.
            let yr = &ybufs[0][dy * geom.ny + dx0..dy * geom.ny + dx1];
            let cbr = &cbuf[dy * geom.nc + dx0..dy * geom.nc + dx1];
            let crr = &crbuf[dy * geom.nc + dx0..dy * geom.nc + dx1];
            for i in 0..cw {
                yrow[i] = to_u8_fast(yr[i]);
                cbrow[i] = to_u8_fast(cbr[i]);
                crrow[i] = to_u8_fast(crr[i]);
            }
        } else {
            for (i, dx) in (dx0..dx1).enumerate() {
                yrow[i] = to_u8_fast(luma_sample(geom, ybufs, dy, dx));
                cbrow[i] = to_u8_fast(chroma_sample(geom, cbuf, dy, dx));
                crrow[i] = to_u8_fast(chroma_sample(geom, crbuf, dy, dx));
            }
        }
        stats.pixels_written += cw as u64;
    }
}

// ---------------------------------------------------------------------------
// Block-level helpers
// ---------------------------------------------------------------------------

/// Magnitude category (number of bits) of a value, JPEG-style.
#[inline]
fn magnitude_category(v: i16) -> u32 {
    let a = v.unsigned_abs() as u32;
    32 - a.leading_zeros()
}

/// Encodes the amplitude bits of `v` in `size` bits (one's-complement trick
/// for negatives, as in T.81 §F.1.2.1).
#[inline]
fn amplitude_bits(v: i16, size: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v + ((1 << size) - 1)) as u32 & ((1u32 << size) - 1)
    }
}

/// Decodes amplitude bits back to a signed value (T.81 §F.2.2.1 EXTEND).
///
/// Branchless: the sign of the decoded value — leading amplitude bit 0
/// means negative under the one's-complement encoding — is data-dependent
/// and essentially random in real streams, so a conditional here
/// mispredicts about half the time in the decode hot loop. `size == 0`
/// degenerates cleanly: `bits` is 0 and the correction term `2^0 - 1`
/// is 0.
#[inline]
fn decode_amplitude(bits: u32, size: u32) -> i16 {
    let neg = ((bits >> size.wrapping_sub(1).min(31)) & 1) ^ 1;
    (bits as i32 - (neg as i32) * ((1i32 << size) - 1)) as i16
}

/// Tallies the DC/AC symbols a block would emit.
fn tally_block(coefs: &[i16; 64], dc_pred: i16, dc_freq: &mut [u64], ac_freq: &mut [u64]) {
    let diff = coefs[0] - dc_pred;
    dc_freq[magnitude_category(diff) as usize] += 1;
    let mut run = 0u32;
    for &c in &coefs[1..] {
        if c == 0 {
            run += 1;
        } else {
            while run >= 16 {
                ac_freq[ZRL as usize] += 1;
                run -= 16;
            }
            let size = magnitude_category(c);
            ac_freq[((run << 4) | size) as usize] += 1;
            run = 0;
        }
    }
    if run > 0 {
        ac_freq[EOB as usize] += 1;
    }
}

/// Entropy-encodes one quantized block.
fn encode_block(
    w: &mut BitWriter,
    coefs: &[i16; 64],
    dc_pred: i16,
    dc_table: &HuffmanTable,
    ac_table: &HuffmanTable,
) -> Result<()> {
    let diff = coefs[0] - dc_pred;
    let size = magnitude_category(diff);
    dc_table.encode(w, size as u16)?;
    if size > 0 {
        w.put(amplitude_bits(diff, size), size);
    }
    let mut run = 0u32;
    for &c in &coefs[1..] {
        if c == 0 {
            run += 1;
        } else {
            while run >= 16 {
                ac_table.encode(w, ZRL)?;
                run -= 16;
            }
            let size = magnitude_category(c);
            ac_table.encode(w, ((run << 4) | size) as u16)?;
            w.put(amplitude_bits(c, size), size);
            run = 0;
        }
    }
    if run > 0 {
        ac_table.encode(w, EOB)?;
    }
    Ok(())
}

/// Entropy-decodes one quantized block (zig-zag order) into `coefs`,
/// reading symbols with the bit-by-bit canonical walk. This is the
/// reference oracle; [`decode_block_fast`] must produce identical
/// coefficients and cursor positions (pinned by the workspace proptests
/// and the `decode_hotpath` gate).
///
/// Returns the coded prefix length `n`: `coefs[..n]` are valid (zero runs
/// included), `coefs[n..]` are untouched and implicitly zero — callers
/// dequantize with [`dequantize_zigzag_prefix`] instead of pre-zeroing
/// all 64 entries per block.
fn decode_block(
    r: &mut BitReader<'_>,
    dc_table: &HuffmanTable,
    ac_table: &HuffmanTable,
    dc_pred: i16,
    coefs: &mut [i16; 64],
    stats: &mut DecodeStats,
) -> Result<usize> {
    let size = dc_table.decode(r)? as u32;
    stats.symbols_decoded += 1;
    let diff = if size > 0 {
        decode_amplitude(r.bits(size)?, size)
    } else {
        0
    };
    coefs[0] = dc_pred + diff;
    let mut k = 1usize;
    while k < 64 {
        let sym = ac_table.decode(r)?;
        stats.symbols_decoded += 1;
        if sym == EOB {
            break;
        }
        if sym == ZRL {
            let k1 = (k + 16).min(64);
            coefs[k..k1].fill(0);
            k = k1;
            continue;
        }
        let run = (sym >> 4) as usize;
        let size = (sym & 0x0F) as u32;
        if k + run >= 64 || size == 0 {
            return Err(Error::BadCode {
                context: "sjpg AC coefficient overrun",
            });
        }
        coefs[k..k + run].fill(0);
        k += run;
        coefs[k] = decode_amplitude(r.bits(size)?, size);
        k += 1;
    }
    Ok(k)
}

/// Pair-LUT window width: a 12-bit window resolves most (code, amplitude)
/// pairs in a single table read.
const PAIR_BITS: u32 = 12;
/// Pair-LUT entry kinds (bits 9..11 of an entry).
const PAIR_VAL: u32 = 0;
const PAIR_EOB: u32 = 1;
const PAIR_ZRL: u32 = 2;

/// Fully-decoded entropy tables for the fast path. `dc_pairs`/`ac_pairs`
/// map a 12-bit stream window straight to a decoded (total bits, run,
/// amplitude value) triple whenever the Huffman code *and* its amplitude
/// bits both fit in the window — one load replaces the code lookup, the
/// amplitude extraction, and the T.81 EXTEND step. Grain-heavy streams
/// lean on short codes with small amplitudes, so the single-load path
/// covers the overwhelming majority of symbols; the rest fall back to
/// the prefix LUT + canonical walk.
///
/// Entry layout (`0` = window not fully decodable, fall back):
/// bits 0..5 total consumed bits, 5..9 zero run, 9..11 kind
/// ([`PAIR_VAL`]/[`PAIR_EOB`]/[`PAIR_ZRL`]), 16..32 amplitude as `i16`.
struct FastTables<'t> {
    dc: &'t HuffmanTable,
    ac: &'t HuffmanTable,
    dc_pairs: Vec<u32>,
    ac_pairs: Vec<u32>,
}

impl<'t> FastTables<'t> {
    fn new(dc: &'t HuffmanTable, ac: &'t HuffmanTable) -> Self {
        FastTables {
            dc_pairs: build_pair_lut(dc, true),
            ac_pairs: build_pair_lut(ac, false),
            dc,
            ac,
        }
    }
}

/// Builds the pair LUT for one table; see [`FastTables`] for the entry
/// layout. Windows whose code is longer than the window, whose amplitude
/// spills past it, or whose symbol is malformed (AC size 0 outside
/// EOB/ZRL) stay `0` and resolve through the fallback path, preserving
/// the reference decoder's error behavior.
fn build_pair_lut(table: &HuffmanTable, is_dc: bool) -> Vec<u32> {
    let mut lut = vec![0u32; 1 << PAIR_BITS];
    for (idx, e) in lut.iter_mut().enumerate() {
        let w16 = (idx as u32) << (16 - PAIR_BITS);
        let (len, sym) = table.lookup16(w16);
        if len == 0 || len > PAIR_BITS {
            continue;
        }
        if !is_dc && sym == EOB {
            *e = len | (PAIR_EOB << 9);
            continue;
        }
        if !is_dc && sym == ZRL {
            *e = len | (PAIR_ZRL << 9);
            continue;
        }
        let (size, run) = if is_dc {
            (sym as u32, 0u32)
        } else {
            ((sym & 0x0F) as u32, (sym >> 4) as u32)
        };
        if (!is_dc && size == 0) || len + size > PAIR_BITS {
            continue;
        }
        let total = len + size;
        let bits = (w16 >> (16 - total)) & ((1u32 << size) - 1);
        let val = decode_amplitude(bits, size);
        *e = total | (run << 5) | (PAIR_VAL << 9) | ((val as u16 as u32) << 16);
    }
    lut
}

/// Table-driven twin of [`decode_block`], run through a
/// [`FastCursor`]: upcoming bits stay register-resident in a u64
/// accumulator, and one [`FastTables`] pair-LUT read resolves a whole
/// (code, amplitude) pair for the common case — no per-symbol memory
/// access beyond the single table load. Codes or amplitudes that spill
/// past the 12-bit window (rare) resolve through the prefix LUT and, if
/// even that misses, the canonical walk over a 32-bit peek. Reads
/// exactly the same bits from exactly the same positions as the
/// reference. The caller owns the cursor for a whole MCU row and syncs
/// it back to the [`BitReader`] at row end, which is where truncated
/// input surfaces as an error.
fn decode_block_fast(
    c: &mut FastCursor<'_>,
    tables: &FastTables<'_>,
    dc_pred: i16,
    coefs: &mut [i16; 64],
    stats: &mut DecodeStats,
) -> Result<usize> {
    /// Fallback for windows the pair LUT can't resolve: reads one
    /// (symbol, amplitude-size, amplitude-bits) triple from the cursor.
    /// `size_of` maps a symbol to its amplitude width (DC: the symbol
    /// itself; AC: the low nibble — which also maps EOB/ZRL to 0, as
    /// they carry no amplitude).
    #[inline]
    fn read_pair(
        c: &mut FastCursor<'_>,
        table: &HuffmanTable,
        size_of: impl Fn(u16) -> u32,
    ) -> Result<(u16, u32, u32)> {
        let w = c.peek32();
        let (len, sym) = table.lookup16(w >> 16);
        let (len, sym) = if len != 0 {
            (len, sym)
        } else {
            table.walk16(w >> 16)?
        };
        let size = size_of(sym);
        let total = len + size;
        // `size == 0` degenerates to a zero mask, so no branch: the
        // amplitude lives directly under the code in the same window.
        let bits = (w >> (32 - total)) & ((1u32 << size) - 1);
        c.skip(total);
        Ok((sym, size, bits))
    }
    let mut symbols = 1u64;
    c.refill();
    let e = tables.dc_pairs[(c.peek32() >> (32 - PAIR_BITS)) as usize];
    let diff = if e != 0 {
        c.skip(e & 31);
        (e >> 16) as u16 as i16
    } else {
        let (_, size, bits) = read_pair(c, tables.dc, |sym| sym as u32)?;
        decode_amplitude(bits, size)
    };
    coefs[0] = dc_pred + diff;
    let mut k = 1usize;
    while k < 64 {
        symbols += 1;
        c.refill();
        let e = tables.ac_pairs[(c.peek32() >> (32 - PAIR_BITS)) as usize];
        let (run, val) = if e != 0 {
            c.skip(e & 31);
            let kind = (e >> 9) & 3;
            if kind != PAIR_VAL {
                if kind == PAIR_EOB {
                    break;
                }
                let k1 = (k + 16).min(64);
                coefs[k..k1].fill(0);
                k = k1;
                continue;
            }
            (((e >> 5) & 15) as usize, (e >> 16) as u16 as i16)
        } else {
            let (sym, size, bits) = read_pair(c, tables.ac, |sym| (sym & 0x0F) as u32)?;
            if sym == EOB {
                break;
            }
            if sym == ZRL {
                let k1 = (k + 16).min(64);
                coefs[k..k1].fill(0);
                k = k1;
                continue;
            }
            if size == 0 {
                return Err(Error::BadCode {
                    context: "sjpg AC coefficient overrun",
                });
            }
            ((sym >> 4) as usize, decode_amplitude(bits, size))
        };
        if k + run >= 64 {
            return Err(Error::BadCode {
                context: "sjpg AC coefficient overrun",
            });
        }
        coefs[k..k + run].fill(0);
        k += run;
        coefs[k] = val;
        k += 1;
    }
    stats.symbols_decoded += symbols;
    Ok(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize, seed: u8) -> ImageU8 {
        let mut img = ImageU8::zeros(w, h, 3);
        for y in 0..h {
            for x in 0..w {
                let base = ((x * 13 + y * 7) % 200) as u8;
                img.set(x, y, 0, base.wrapping_add(seed));
                img.set(x, y, 1, ((x * x + y) % 256) as u8);
                img.set(x, y, 2, ((x + y * y + seed as usize) % 256) as u8);
            }
        }
        img
    }

    fn psnr(a: &ImageU8, b: &ImageU8) -> f64 {
        assert_eq!(a.data().len(), b.data().len());
        let mse: f64 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / a.data().len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    #[test]
    fn roundtrip_high_quality_is_faithful() {
        let img = textured(64, 48, 3);
        let enc = SjpgEncoder::new(95).encode(&img).unwrap();
        let dec = decode(&enc).unwrap();
        assert_eq!((dec.width(), dec.height()), (64, 48));
        assert!(psnr(&img, &dec) > 30.0, "psnr={}", psnr(&img, &dec));
    }

    #[test]
    fn lower_quality_means_smaller_and_noisier() {
        let img = textured(96, 96, 9);
        let q95 = SjpgEncoder::new(95).encode(&img).unwrap();
        let q75 = SjpgEncoder::new(75).encode(&img).unwrap();
        let q30 = SjpgEncoder::new(30).encode(&img).unwrap();
        assert!(q75.len() < q95.len());
        assert!(q30.len() < q75.len());
        let p95 = psnr(&img, &decode(&q95).unwrap());
        let p75 = psnr(&img, &decode(&q75).unwrap());
        let p30 = psnr(&img, &decode(&q30).unwrap());
        assert!(p95 > p75 && p75 > p30, "{p95} {p75} {p30}");
    }

    #[test]
    fn non_multiple_of_block_dims_roundtrip() {
        let img = textured(37, 29, 1);
        let enc = SjpgEncoder::new(90).encode(&img).unwrap();
        let dec = decode(&enc).unwrap();
        assert_eq!((dec.width(), dec.height()), (37, 29));
        assert!(psnr(&img, &dec) > 25.0);
    }

    #[test]
    fn peek_dims_reads_header_only() {
        let img = textured(40, 24, 5);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        assert_eq!(peek_dims(&enc).unwrap(), (40, 24));
    }

    #[test]
    fn roi_decode_matches_full_decode() {
        let img = textured(128, 96, 7);
        let enc = SjpgEncoder::new(85).encode(&img).unwrap();
        let full = decode(&enc).unwrap();
        let roi = Rect::new(33, 17, 40, 30);
        let (partial, aligned, _) = decode_roi(&enc, roi).unwrap();
        assert_eq!(aligned, Rect::new(32, 16, 48, 32));
        for y in 0..aligned.h {
            for x in 0..aligned.w {
                for c in 0..3 {
                    assert_eq!(
                        partial.at(x, y, c),
                        full.at(aligned.x + x, aligned.y + y, c),
                        "mismatch at {x},{y},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn roi_decode_skips_work() {
        let img = textured(256, 256, 2);
        let enc = SjpgEncoder::new(85).encode(&img).unwrap();
        let (_, full_stats) = decode_with_stats(&enc).unwrap();
        let (_, _, roi_stats) = decode_roi(&enc, Rect::new(96, 96, 64, 64)).unwrap();
        assert!(roi_stats.blocks_idct < full_stats.blocks_idct / 4);
        assert!(roi_stats.symbols_decoded < full_stats.symbols_decoded / 2);
        assert!(roi_stats.rows_skipped > 0);
    }

    #[test]
    fn early_stop_rows_match_full_decode() {
        let img = textured(64, 64, 4);
        let enc = SjpgEncoder::new(85).encode(&img).unwrap();
        let full = decode(&enc).unwrap();
        let (top, stats) = decode_rows(&enc, 24).unwrap();
        assert_eq!(top.height(), 24);
        assert!(stats.rows_skipped == 5); // 8 rows total, 3 decoded
        for y in 0..24 {
            for x in 0..64 {
                assert_eq!(top.at(x, y, 0), full.at(x, y, 0));
            }
        }
    }

    /// The shared reference kernel a scaled-IDCT decode is judged against
    /// (same one `figure_lowres` and the workspace proptests use).
    fn box_down(img: &ImageU8, f: usize) -> ImageU8 {
        smol_imgproc::ops::box_downsample_u8(img, f).unwrap()
    }

    /// A smooth image (low-frequency gradients), where truncated-spectrum
    /// reconstruction is near-exact.
    fn smooth(w: usize, h: usize) -> ImageU8 {
        let mut img = ImageU8::zeros(w, h, 3);
        for y in 0..h {
            for x in 0..w {
                let fx = x as f64 / w as f64;
                let fy = y as f64 / h as f64;
                img.set(x, y, 0, (60.0 + 120.0 * fx) as u8);
                img.set(x, y, 1, (200.0 - 130.0 * fy) as u8);
                img.set(x, y, 2, (90.0 + 80.0 * fx * fy) as u8);
            }
        }
        img
    }

    #[test]
    fn scaled_decode_dims_and_stats() {
        let img = textured(128, 96, 6);
        let enc = SjpgEncoder::new(90).encode(&img).unwrap();
        let (_, full) = decode_with_stats(&enc).unwrap();
        for factor in [2usize, 4, 8] {
            let (small, stats) = decode_scaled(&enc, factor).unwrap();
            assert_eq!((small.width(), small.height()), (128 / factor, 96 / factor));
            // Entropy decoding is unavoidable (the stream is sequential)…
            assert_eq!(stats.symbols_decoded, full.symbols_decoded);
            // …but the transform work drops with the square-cube of the
            // scale: ≥8× fewer MACs at factor 2, ≥64× at factor 4.
            assert!(
                stats.idct_macs * (factor * factor * factor) as u64 <= full.idct_macs,
                "factor {factor}: {} vs {}",
                stats.idct_macs,
                full.idct_macs
            );
            assert!(stats.blocks_idct < full.blocks_idct / 4);
            assert_eq!(
                stats.pixels_written,
                (128 / factor) as u64 * (96 / factor) as u64
            );
        }
    }

    #[test]
    fn scaled_decode_factor_one_is_full_decode() {
        let img = textured(40, 32, 3);
        let enc = SjpgEncoder::new(85).encode(&img).unwrap();
        let (a, sa) = decode_with_stats(&enc).unwrap();
        let (b, sb) = decode_scaled(&enc, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn scaled_decode_tracks_box_downsample_of_full_decode() {
        let img = smooth(96, 64);
        let enc = SjpgEncoder::new(92).encode(&img).unwrap();
        let full = decode(&enc).unwrap();
        for factor in [2usize, 4] {
            let (small, _) = decode_scaled(&enc, factor).unwrap();
            let reference = box_down(&full, factor);
            let p = psnr(&reference, &small);
            assert!(p > 30.0, "factor {factor}: psnr {p}");
        }
    }

    #[test]
    fn scaled_decode_non_multiple_dims() {
        let img = smooth(61, 45);
        let enc = SjpgEncoder::new(90).encode(&img).unwrap();
        let (small, _) = decode_scaled(&enc, 4).unwrap();
        assert_eq!((small.width(), small.height()), (16, 12));
        // Edge pixels come from edge-replicated encode blocks — they must
        // still be plausible (close to the true boundary pixels).
        let reference = box_down(&decode(&enc).unwrap(), 4);
        assert!(psnr(&reference, &small) > 25.0);
    }

    #[test]
    fn scaled_decode_rejects_bad_factor() {
        let img = textured(32, 32, 1);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        assert!(decode_scaled(&enc, 3).is_err());
        assert!(decode_scaled(&enc, 16).is_err());
    }

    #[test]
    fn invalid_roi_rejected() {
        let img = textured(32, 32, 0);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        assert!(decode_roi(&enc, Rect::new(20, 20, 20, 20)).is_err());
        assert!(decode_roi(&enc, Rect::new(0, 0, 0, 0)).is_err());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let img = textured(16, 16, 0);
        let mut enc = SjpgEncoder::new(75).encode(&img).unwrap().to_vec();
        enc[0] ^= 0xFF;
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn corrupt_quality_byte_rejected_with_typed_error() {
        let img = textured(16, 16, 0);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap().to_vec();
        // Header layout: magic(4) + version(1) + w(2) + h(2), then quality.
        for bad in [0u8, 101, 200] {
            let mut corrupted = enc.clone();
            corrupted[9] = bad;
            match decode(&corrupted) {
                Err(Error::BadQuality(q)) => assert_eq!(q, bad),
                other => panic!("expected BadQuality({bad}), got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_body_errors_not_panics() {
        let img = textured(64, 64, 8);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        let cut = &enc[..enc.len() - enc.len() / 3];
        assert!(decode(cut).is_err());
    }

    #[test]
    fn amplitude_coding_roundtrip() {
        for v in [-2047i16, -1024, -255, -1, 0, 1, 2, 127, 1024, 2047] {
            let size = magnitude_category(v);
            if size == 0 {
                assert_eq!(v, 0);
                continue;
            }
            let bits = amplitude_bits(v, size);
            assert_eq!(decode_amplitude(bits, size), v, "v={v}");
        }
    }

    #[test]
    fn flat_image_compresses_extremely_well() {
        let img = ImageU8::from_vec(64, 64, 3, vec![128; 64 * 64 * 3]).unwrap();
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        // 12 KiB raw → far below 2 KiB encoded.
        assert!(enc.len() < 2048, "len={}", enc.len());
        let dec = decode(&enc).unwrap();
        assert!(psnr(&img, &dec) > 40.0);
    }

    #[test]
    fn mid_gray_roundtrip_has_zero_mean_bias() {
        // Regression for the truncation bug: `as u8` on the reconstructed
        // float truncated toward zero, darkening every pixel by ~0.5 LSB on
        // average. Sweep uniform grays whose DC does not reconstruct
        // exactly; with round-to-nearest the signed error must average out.
        let mut bias = 0.0f64;
        let mut count = 0usize;
        for gray in (90u8..=165).step_by(3) {
            let img = ImageU8::from_vec(32, 32, 3, vec![gray; 32 * 32 * 3]).unwrap();
            let enc = SjpgEncoder::new(90).encode(&img).unwrap();
            let dec = decode(&enc).unwrap();
            for (&a, &b) in img.data().iter().zip(dec.data()) {
                bias += b as f64 - a as f64;
                count += 1;
            }
        }
        let mean = bias / count as f64;
        assert!(mean.abs() < 0.25, "mean signed error {mean}");
    }

    #[test]
    fn c420_roundtrip_is_faithful_on_smooth_content() {
        let img = smooth(96, 80);
        let enc = SjpgEncoder::with_chroma(95, Chroma::C420)
            .encode(&img)
            .unwrap();
        let dec = decode(&enc).unwrap();
        assert_eq!((dec.width(), dec.height()), (96, 80));
        let p = psnr(&img, &dec);
        assert!(p > 30.0, "psnr={p}");
    }

    #[test]
    fn c420_is_smaller_than_c444() {
        let img = smooth(128, 96);
        let full = SjpgEncoder::with_chroma(90, Chroma::C444)
            .encode(&img)
            .unwrap();
        let sub = SjpgEncoder::with_chroma(90, Chroma::C420)
            .encode(&img)
            .unwrap();
        assert!(
            sub.len() < full.len(),
            "420 {} vs 444 {}",
            sub.len(),
            full.len()
        );
    }

    #[test]
    fn c420_non_multiple_dims_roundtrip() {
        let img = smooth(61, 45);
        let enc = SjpgEncoder::with_chroma(92, Chroma::C420)
            .encode(&img)
            .unwrap();
        let dec = decode(&enc).unwrap();
        assert_eq!((dec.width(), dec.height()), (61, 45));
        assert!(psnr(&img, &dec) > 28.0);
    }

    #[test]
    fn c420_scaled_decode_dims_and_fidelity() {
        let img = smooth(128, 96);
        let enc = SjpgEncoder::with_chroma(92, Chroma::C420)
            .encode(&img)
            .unwrap();
        let full = decode(&enc).unwrap();
        for factor in [2usize, 4, 8] {
            let (small, stats) = decode_scaled(&enc, factor).unwrap();
            assert_eq!((small.width(), small.height()), (128 / factor, 96 / factor));
            assert_eq!(
                stats.pixels_written,
                (128 / factor) as u64 * (96 / factor) as u64
            );
            if factor <= 4 {
                let reference = box_down(&full, factor);
                let p = psnr(&reference, &small);
                assert!(p > 28.0, "factor {factor}: psnr {p}");
            }
        }
    }

    #[test]
    fn c420_scaled_decode_skips_chroma_work() {
        // A 4:2:0 MCU carries 6 blocks where 4:4:4 carries 12 (per 16×16
        // pixels) — at equal factor the transform MACs must be half.
        let img = smooth(128, 128);
        let e444 = SjpgEncoder::with_chroma(90, Chroma::C444)
            .encode(&img)
            .unwrap();
        let e420 = SjpgEncoder::with_chroma(90, Chroma::C420)
            .encode(&img)
            .unwrap();
        let (_, s444) = decode_with_stats(&e444).unwrap();
        let (_, s420) = decode_with_stats(&e420).unwrap();
        assert_eq!(s420.idct_macs * 2, s444.idct_macs);
    }

    #[test]
    fn c420_roi_decode_aligns_to_mcu_and_matches_full() {
        let img = textured(128, 96, 5);
        let enc = SjpgEncoder::with_chroma(88, Chroma::C420)
            .encode(&img)
            .unwrap();
        let full = decode(&enc).unwrap();
        let (partial, aligned, stats) = decode_roi(&enc, Rect::new(33, 17, 40, 30)).unwrap();
        assert_eq!(aligned, Rect::new(32, 16, 48, 32));
        assert!(stats.rows_skipped > 0);
        for y in 0..aligned.h {
            for x in 0..aligned.w {
                for c in 0..3 {
                    assert_eq!(
                        partial.at(x, y, c),
                        full.at(aligned.x + x, aligned.y + y, c),
                        "mismatch at {x},{y},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn banded_decode_is_bit_identical_to_sequential() {
        for chroma in [Chroma::C444, Chroma::C420] {
            let img = textured(144, 120, 11);
            let enc = SjpgEncoder::with_chroma(85, chroma).encode(&img).unwrap();
            let (seq, seq_stats) = decode_with_opts(&enc, DecodeOptions::default()).unwrap();
            for workers in [2usize, 3, 7, 64] {
                let (par, par_stats) =
                    decode_with_opts(&enc, DecodeOptions::with_workers(workers)).unwrap();
                assert_eq!(seq, par, "chroma {chroma:?} workers {workers}");
                assert_eq!(seq_stats, par_stats);
            }
        }
    }

    #[test]
    fn vector_kernels_bit_identical_to_scalar_reference() {
        for chroma in [Chroma::C444, Chroma::C420] {
            let img = textured(104, 72, 13);
            let enc = SjpgEncoder::with_chroma(90, chroma).encode(&img).unwrap();
            for factor in [1usize, 2, 4, 8] {
                let (vec_img, vs) =
                    decode_scaled_opts(&enc, factor, DecodeOptions::default()).unwrap();
                let (ref_img, rs) =
                    decode_scaled_opts(&enc, factor, DecodeOptions::scalar_reference()).unwrap();
                assert_eq!(vec_img, ref_img, "chroma {chroma:?} factor {factor}");
                assert_eq!(vs, rs);
            }
        }
    }
}
