//! sjpg — a from-scratch DCT block image codec with JPEG's cost anatomy.
//!
//! The pipeline matches JPEG 4:4:4 baseline: RGB→YCbCr, 8×8 block DCT,
//! quality-scaled quantization (Annex-K tables), zig-zag + DC-DPCM +
//! AC run-length magnitude coding, canonical Huffman entropy coding with
//! per-image optimal tables.
//!
//! Two features exist specifically for the paper's partial-decoding
//! optimizations (§6.4, Figure 3, Algorithm 1):
//!
//! * every MCU row is byte-aligned and indexed in the header (the moral
//!   equivalent of JPEG restart markers + a tile index), so a decoder can
//!   **seek past rows** outside a region of interest, and
//! * within a row, blocks left of the ROI are entropy-decoded (the stream is
//!   sequential) but skip dequantize+IDCT+color conversion, and decoding
//!   **stops early** after the last ROI column / row.

use crate::bitio::{BitReader, BitWriter};
use crate::dct::{
    forward_dct, inverse_dct, inverse_dct_scaled, scaled_idct_macs, BLOCK, FULL_IDCT_MACS,
};
use crate::error::{Error, Result};
use crate::huffman::HuffmanTable;
use crate::quant::{dequantize_zigzag, quantize_zigzag, scale_table, BASE_CHROMA, BASE_LUMA};
use bytes::Bytes;
use smol_imgproc::ops::colorspace::{rgb_pixel_to_ycbcr, ycbcr_pixel_to_rgb};
use smol_imgproc::{ImageU8, Rect};

const MAGIC: u32 = 0x534A_5047; // "SJPG"
const VERSION: u32 = 1;
const DC_ALPHABET: usize = 16;
const AC_ALPHABET: usize = 256;
const EOB: u16 = 0x00;
const ZRL: u16 = 0xF0;

/// Work counters filled in by decode calls; used by tests and benches to
/// verify that partial decoding actually skips work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DecodeStats {
    /// Huffman symbols read (entropy-decode effort).
    pub symbols_decoded: u64,
    /// Inverse-transform compute effort in full 8×8 IDCT equivalents. A
    /// fully-decoded block counts 1; a reduced-resolution block at scale
    /// `n` counts `2n³ / 2·8³` of a block (the MAC ratio), accumulated
    /// exactly via [`DecodeStats::idct_macs`] and floor-divided.
    pub blocks_idct: u64,
    /// Pixels color-converted and written to the output.
    pub pixels_written: u64,
    /// MCU rows skipped entirely via the row index.
    pub rows_skipped: u64,
    /// Exact multiply-accumulate count spent in inverse transforms; the
    /// raw quantity behind `blocks_idct`.
    pub idct_macs: u64,
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy)]
pub struct SjpgEncoder {
    pub quality: u8,
}

impl SjpgEncoder {
    pub fn new(quality: u8) -> Self {
        SjpgEncoder { quality }
    }

    /// Encodes an RGB image.
    pub fn encode(&self, img: &ImageU8) -> Result<Bytes> {
        if img.channels() != 3 {
            return Err(Error::Image(smol_imgproc::Error::UnsupportedChannels {
                channels: img.channels(),
                op: "sjpg::encode",
            }));
        }
        if img.width() == 0 || img.height() == 0 {
            return Err(Error::BadHeader("zero-sized image".into()));
        }
        let luma_q = scale_table(&BASE_LUMA, self.quality)?;
        let chroma_q = scale_table(&BASE_CHROMA, self.quality)?;

        let bw = img.width().div_ceil(BLOCK);
        let bh = img.height().div_ceil(BLOCK);

        // Pass 1: transform + quantize all blocks, gather symbol statistics.
        let mut blocks: Vec<[i16; 64]> = Vec::with_capacity(bw * bh * 3);
        let mut dc_freq = [0u64; DC_ALPHABET];
        let mut ac_freq = [0u64; AC_ALPHABET];
        let mut pixel_block = [0.0f32; 64];
        let mut freq_block = [0.0f32; 64];
        for by in 0..bh {
            let mut dc_pred = [0i16; 3];
            for bx in 0..bw {
                for (comp, pred) in dc_pred.iter_mut().enumerate() {
                    extract_block(img, bx, by, comp, &mut pixel_block);
                    forward_dct(&pixel_block.clone(), &mut freq_block);
                    let table = if comp == 0 { &luma_q } else { &chroma_q };
                    let mut coefs = [0i16; 64];
                    quantize_zigzag(&freq_block, table, &mut coefs);
                    tally_block(&coefs, *pred, &mut dc_freq, &mut ac_freq);
                    *pred = coefs[0];
                    blocks.push(coefs);
                }
            }
        }
        let dc_table = HuffmanTable::from_frequencies(&dc_freq, 16)?;
        let ac_table = HuffmanTable::from_frequencies(&ac_freq, 16)?;

        // Pass 2: entropy-encode the body, byte-aligning each MCU row and
        // recording its byte offset.
        let mut body = BitWriter::with_capacity(img.pixel_count());
        let mut row_offsets: Vec<u32> = Vec::with_capacity(bh);
        for by in 0..bh {
            body.align_byte();
            row_offsets.push((body.bit_pos() / 8) as u32);
            let mut dc_pred = [0i16; 3];
            for bx in 0..bw {
                for comp in 0..3 {
                    let coefs = &blocks[(by * bw + bx) * 3 + comp];
                    encode_block(&mut body, coefs, dc_pred[comp], &dc_table, &ac_table)?;
                    dc_pred[comp] = coefs[0];
                }
            }
        }
        let body_bytes = body.finish();

        // Header.
        let mut head = BitWriter::new();
        head.put(MAGIC, 32);
        head.put(VERSION, 8);
        head.put(img.width() as u32, 16);
        head.put(img.height() as u32, 16);
        head.put(self.quality as u32, 8);
        dc_table.write_spec(&mut head);
        ac_table.write_spec(&mut head);
        head.put(row_offsets.len() as u32, 16);
        for &off in &row_offsets {
            head.put(off, 32);
        }
        let mut out = head.finish();
        out.extend_from_slice(&body_bytes);
        Ok(Bytes::from(out))
    }
}

/// Parsed header with entropy tables and the MCU-row index.
#[derive(Debug, Clone)]
pub struct SjpgHeader {
    pub width: usize,
    pub height: usize,
    pub quality: u8,
    pub row_offsets: Vec<u32>,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
    /// Byte offset where the body begins.
    body_start: usize,
}

impl SjpgHeader {
    /// Parses the header (tables + index) without touching the body.
    pub fn parse(data: &[u8]) -> Result<Self> {
        let mut r = BitReader::new(data);
        if r.bits(32)? != MAGIC {
            return Err(Error::BadMagic { expected: "SJPG" });
        }
        if r.bits(8)? != VERSION {
            return Err(Error::BadHeader("unsupported version".into()));
        }
        let width = r.bits(16)? as usize;
        let height = r.bits(16)? as usize;
        let quality = r.bits(8)? as u8;
        if width == 0 || height == 0 {
            return Err(Error::BadHeader("zero-sized image".into()));
        }
        let dc_table = HuffmanTable::read_spec(&mut r, DC_ALPHABET)?;
        let ac_table = HuffmanTable::read_spec(&mut r, AC_ALPHABET)?;
        let n_rows = r.bits(16)? as usize;
        if n_rows != height.div_ceil(BLOCK) {
            return Err(Error::BadHeader(format!(
                "row index has {n_rows} entries for height {height}"
            )));
        }
        let mut row_offsets = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            row_offsets.push(r.bits(32)?);
        }
        r.align_byte();
        let body_start = (r.bit_pos() / 8) as usize;
        Ok(SjpgHeader {
            width,
            height,
            quality,
            row_offsets,
            dc_table,
            ac_table,
            body_start,
        })
    }
}

/// Reads only the image dimensions from an encoded buffer.
pub fn peek_dims(data: &[u8]) -> Result<(usize, usize)> {
    let mut r = BitReader::new(data);
    if r.bits(32)? != MAGIC {
        return Err(Error::BadMagic { expected: "SJPG" });
    }
    let _ = r.bits(8)?;
    let w = r.bits(16)? as usize;
    let h = r.bits(16)? as usize;
    Ok((w, h))
}

/// Fully decodes an sjpg buffer.
pub fn decode(data: &[u8]) -> Result<ImageU8> {
    decode_with_stats(data).map(|(img, _)| img)
}

/// Fully decodes, returning work counters.
pub fn decode_with_stats(data: &[u8]) -> Result<(ImageU8, DecodeStats)> {
    let header = SjpgHeader::parse(data)?;
    let full = Rect::new(0, 0, header.width, header.height);
    decode_region(data, &header, full)
}

/// Decodes only the macroblock-aligned region covering `roi`
/// (Figure 3, left: macroblock-based partial decoding).
///
/// Returns the decoded sub-image together with the aligned region it covers
/// (callers crop to the exact ROI afterwards if needed).
pub fn decode_roi(data: &[u8], roi: Rect) -> Result<(ImageU8, Rect, DecodeStats)> {
    let header = SjpgHeader::parse(data)?;
    if !roi.fits_in(header.width, header.height) || roi.w == 0 || roi.h == 0 {
        return Err(Error::BadRegion(format!(
            "roi {roi:?} invalid for {}x{}",
            header.width, header.height
        )));
    }
    let aligned = roi.align_to_blocks(BLOCK, header.width, header.height);
    let (img, stats) = decode_region(data, &header, aligned)?;
    Ok((img, aligned, stats))
}

/// Decodes only the top `n_rows` pixel rows (raster-order early stopping,
/// Figure 3, right).
pub fn decode_rows(data: &[u8], n_rows: usize) -> Result<(ImageU8, DecodeStats)> {
    let header = SjpgHeader::parse(data)?;
    let h = n_rows.min(header.height).max(1);
    let region = Rect::new(0, 0, header.width, h.div_ceil(BLOCK) * BLOCK).align_to_blocks(
        BLOCK,
        header.width,
        header.height,
    );
    decode_region(data, &header, region)
}

/// Output dimensions of a reduced-resolution decode of a `w × h` image at
/// `factor` (each 8×8 block reconstructs to an `8/factor`-edge patch; edge
/// blocks are clipped to the scaled image bounds).
pub fn reduced_dims(w: usize, h: usize, factor: usize) -> (usize, usize) {
    (w.div_ceil(factor), h.div_ceil(factor))
}

/// Decodes directly to `1/factor` resolution via a scaled IDCT
/// (multi-resolution decoding, Table 4): only the top-left
/// `(8/factor) × (8/factor)` coefficients of each block feed an
/// `8/factor`-point inverse transform, so the downsample is fused into the
/// decoder instead of being a post-decode resize. `factor` must be 1
/// (full decode), 2, 4, or 8 (DC-only).
///
/// The output approximates a box-downsample of the full decode at the same
/// geometry; `DecodeStats::idct_macs`/`blocks_idct` prove the skipped
/// transform work (`2n³` MACs per block instead of `2·8³`).
pub fn decode_scaled(data: &[u8], factor: usize) -> Result<(ImageU8, DecodeStats)> {
    if factor == 1 {
        return decode_with_stats(data);
    }
    if !matches!(factor, 2 | 4 | 8) {
        return Err(Error::BadRegion(format!(
            "reduced-resolution factor must be 1, 2, 4, or 8, got {factor}"
        )));
    }
    let n = BLOCK / factor;
    let header = SjpgHeader::parse(data)?;
    let luma_q = scale_table(&BASE_LUMA, header.quality)?;
    let chroma_q = scale_table(&BASE_CHROMA, header.quality)?;
    let bw = header.width.div_ceil(BLOCK);
    let bh = header.height.div_ceil(BLOCK);
    let (out_w, out_h) = reduced_dims(header.width, header.height, factor);
    let body = &data[header.body_start..];
    let mut r = BitReader::new(body);
    let mut stats = DecodeStats::default();

    let mut out = ImageU8::zeros(out_w, out_h, 3);
    let mut coefs = [0i16; 64];
    let mut freq = [0.0f32; 64];
    let mut pixels = [[0.0f32; 64]; 3];

    for by in 0..bh {
        r.seek_bits(header.row_offsets[by] as u64 * 8)?;
        let mut dc_pred = [0i16; 3];
        for bx in 0..bw {
            for comp in 0..3 {
                decode_block(
                    &mut r,
                    &header.dc_table,
                    &header.ac_table,
                    dc_pred[comp],
                    &mut coefs,
                    &mut stats,
                )?;
                dc_pred[comp] = coefs[0];
                let table = if comp == 0 { &luma_q } else { &chroma_q };
                dequantize_zigzag(&coefs, table, &mut freq);
                inverse_dct_scaled(&freq.clone(), n, &mut pixels[comp]);
                stats.idct_macs += scaled_idct_macs(n);
            }
            for dy in 0..n {
                let y = by * n + dy;
                if y >= out_h {
                    continue;
                }
                for dx in 0..n {
                    let x = bx * n + dx;
                    if x >= out_w {
                        continue;
                    }
                    let idx = dy * n + dx;
                    let yy = (pixels[0][idx] + 128.0).clamp(0.0, 255.0) as u8;
                    let cb = (pixels[1][idx] + 128.0).clamp(0.0, 255.0) as u8;
                    let cr = (pixels[2][idx] + 128.0).clamp(0.0, 255.0) as u8;
                    let (red, green, blue) = ycbcr_pixel_to_rgb(yy, cb, cr);
                    out.set(x, y, 0, red);
                    out.set(x, y, 1, green);
                    out.set(x, y, 2, blue);
                    stats.pixels_written += 1;
                }
            }
        }
    }
    stats.blocks_idct = stats.idct_macs / FULL_IDCT_MACS;
    Ok((out, stats))
}

/// Core region decoder. `region` must be block-aligned (except at image
/// edges where it is clamped).
fn decode_region(data: &[u8], header: &SjpgHeader, region: Rect) -> Result<(ImageU8, DecodeStats)> {
    let luma_q = scale_table(&BASE_LUMA, header.quality)?;
    let chroma_q = scale_table(&BASE_CHROMA, header.quality)?;
    let bw = header.width.div_ceil(BLOCK);
    let body = &data[header.body_start..];
    let mut r = BitReader::new(body);
    let mut stats = DecodeStats::default();

    let by0 = region.y / BLOCK;
    let by1 = region.y_end().div_ceil(BLOCK).min(header.row_offsets.len());
    let bx0 = region.x / BLOCK;
    let bx1 = region.x_end().div_ceil(BLOCK).min(bw);
    stats.rows_skipped = (header.row_offsets.len() - (by1 - by0)) as u64;

    let mut out = ImageU8::zeros(region.w, region.h, 3);
    let mut coefs = [0i16; 64];
    let mut freq = [0.0f32; 64];
    let mut pixels = [[0.0f32; 64]; 3];

    for by in by0..by1 {
        // Seek directly to the row's byte offset — rows are independent
        // (DC predictors reset per row, like JPEG restart intervals).
        r.seek_bits(header.row_offsets[by] as u64 * 8)?;
        let mut dc_pred = [0i16; 3];
        for bx in 0..bx1 {
            let in_roi = bx >= bx0;
            for comp in 0..3 {
                decode_block(
                    &mut r,
                    &header.dc_table,
                    &header.ac_table,
                    dc_pred[comp],
                    &mut coefs,
                    &mut stats,
                )?;
                dc_pred[comp] = coefs[0];
                if in_roi {
                    let table = if comp == 0 { &luma_q } else { &chroma_q };
                    dequantize_zigzag(&coefs, table, &mut freq);
                    inverse_dct(&freq.clone(), &mut pixels[comp]);
                    stats.blocks_idct += 1;
                    stats.idct_macs += crate::dct::FULL_IDCT_MACS;
                }
            }
            if in_roi {
                write_block(
                    &mut out,
                    &pixels,
                    bx * BLOCK,
                    by * BLOCK,
                    region,
                    header,
                    &mut stats,
                );
            }
        }
        // Early stop within the row: blocks right of bx1 are never read —
        // the next iteration seeks to the next row offset.
    }
    Ok((out, stats))
}

// ---------------------------------------------------------------------------
// Block-level helpers
// ---------------------------------------------------------------------------

/// Extracts one 8×8 level-shifted component block, replicating edge pixels
/// for partial blocks. `comp` selects Y/Cb/Cr computed on the fly from RGB.
fn extract_block(img: &ImageU8, bx: usize, by: usize, comp: usize, out: &mut [f32; 64]) {
    for dy in 0..BLOCK {
        let y = (by * BLOCK + dy).min(img.height() - 1);
        for dx in 0..BLOCK {
            let x = (bx * BLOCK + dx).min(img.width() - 1);
            let (r, g, b) = (img.at(x, y, 0), img.at(x, y, 1), img.at(x, y, 2));
            let (yy, cb, cr) = rgb_pixel_to_ycbcr(r, g, b);
            let v = match comp {
                0 => yy,
                1 => cb,
                _ => cr,
            };
            out[dy * BLOCK + dx] = v as f32 - 128.0;
        }
    }
}

/// Writes one decoded MCU (3 component blocks) into the output image,
/// converting back to RGB and clipping to the region/image bounds.
fn write_block(
    out: &mut ImageU8,
    pixels: &[[f32; 64]; 3],
    px0: usize,
    py0: usize,
    region: Rect,
    header: &SjpgHeader,
    stats: &mut DecodeStats,
) {
    for dy in 0..BLOCK {
        let y = py0 + dy;
        if y < region.y || y >= region.y_end() || y >= header.height {
            continue;
        }
        for dx in 0..BLOCK {
            let x = px0 + dx;
            if x < region.x || x >= region.x_end() || x >= header.width {
                continue;
            }
            let idx = dy * BLOCK + dx;
            let yy = (pixels[0][idx] + 128.0).clamp(0.0, 255.0) as u8;
            let cb = (pixels[1][idx] + 128.0).clamp(0.0, 255.0) as u8;
            let cr = (pixels[2][idx] + 128.0).clamp(0.0, 255.0) as u8;
            let (r, g, b) = ycbcr_pixel_to_rgb(yy, cb, cr);
            out.set(x - region.x, y - region.y, 0, r);
            out.set(x - region.x, y - region.y, 1, g);
            out.set(x - region.x, y - region.y, 2, b);
            stats.pixels_written += 1;
        }
    }
}

/// Magnitude category (number of bits) of a value, JPEG-style.
#[inline]
fn magnitude_category(v: i16) -> u32 {
    let a = v.unsigned_abs() as u32;
    32 - a.leading_zeros()
}

/// Encodes the amplitude bits of `v` in `size` bits (one's-complement trick
/// for negatives, as in T.81 §F.1.2.1).
#[inline]
fn amplitude_bits(v: i16, size: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v + ((1 << size) - 1)) as u32 & ((1u32 << size) - 1)
    }
}

/// Decodes amplitude bits back to a signed value.
#[inline]
fn decode_amplitude(bits: u32, size: u32) -> i16 {
    if size == 0 {
        0
    } else if bits < (1 << (size - 1)) {
        bits as i16 - ((1 << size) - 1) as i16
    } else {
        bits as i16
    }
}

/// Tallies the DC/AC symbols a block would emit.
fn tally_block(coefs: &[i16; 64], dc_pred: i16, dc_freq: &mut [u64], ac_freq: &mut [u64]) {
    let diff = coefs[0] - dc_pred;
    dc_freq[magnitude_category(diff) as usize] += 1;
    let mut run = 0u32;
    for &c in &coefs[1..] {
        if c == 0 {
            run += 1;
        } else {
            while run >= 16 {
                ac_freq[ZRL as usize] += 1;
                run -= 16;
            }
            let size = magnitude_category(c);
            ac_freq[((run << 4) | size) as usize] += 1;
            run = 0;
        }
    }
    if run > 0 {
        ac_freq[EOB as usize] += 1;
    }
}

/// Entropy-encodes one quantized block.
fn encode_block(
    w: &mut BitWriter,
    coefs: &[i16; 64],
    dc_pred: i16,
    dc_table: &HuffmanTable,
    ac_table: &HuffmanTable,
) -> Result<()> {
    let diff = coefs[0] - dc_pred;
    let size = magnitude_category(diff);
    dc_table.encode(w, size as u16)?;
    if size > 0 {
        w.put(amplitude_bits(diff, size), size);
    }
    let mut run = 0u32;
    for &c in &coefs[1..] {
        if c == 0 {
            run += 1;
        } else {
            while run >= 16 {
                ac_table.encode(w, ZRL)?;
                run -= 16;
            }
            let size = magnitude_category(c);
            ac_table.encode(w, ((run << 4) | size) as u16)?;
            w.put(amplitude_bits(c, size), size);
            run = 0;
        }
    }
    if run > 0 {
        ac_table.encode(w, EOB)?;
    }
    Ok(())
}

/// Entropy-decodes one quantized block (zig-zag order) into `coefs`.
fn decode_block(
    r: &mut BitReader<'_>,
    dc_table: &HuffmanTable,
    ac_table: &HuffmanTable,
    dc_pred: i16,
    coefs: &mut [i16; 64],
    stats: &mut DecodeStats,
) -> Result<()> {
    coefs.fill(0);
    let size = dc_table.decode(r)? as u32;
    stats.symbols_decoded += 1;
    let diff = if size > 0 {
        decode_amplitude(r.bits(size)?, size)
    } else {
        0
    };
    coefs[0] = dc_pred + diff;
    let mut k = 1usize;
    while k < 64 {
        let sym = ac_table.decode(r)?;
        stats.symbols_decoded += 1;
        if sym == EOB {
            break;
        }
        if sym == ZRL {
            k += 16;
            continue;
        }
        let run = (sym >> 4) as usize;
        let size = (sym & 0x0F) as u32;
        k += run;
        if k >= 64 || size == 0 {
            return Err(Error::BadCode {
                context: "sjpg AC coefficient overrun",
            });
        }
        coefs[k] = decode_amplitude(r.bits(size)?, size);
        k += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize, seed: u8) -> ImageU8 {
        let mut img = ImageU8::zeros(w, h, 3);
        for y in 0..h {
            for x in 0..w {
                let base = ((x * 13 + y * 7) % 200) as u8;
                img.set(x, y, 0, base.wrapping_add(seed));
                img.set(x, y, 1, ((x * x + y) % 256) as u8);
                img.set(x, y, 2, ((x + y * y + seed as usize) % 256) as u8);
            }
        }
        img
    }

    fn psnr(a: &ImageU8, b: &ImageU8) -> f64 {
        assert_eq!(a.data().len(), b.data().len());
        let mse: f64 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / a.data().len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }

    #[test]
    fn roundtrip_high_quality_is_faithful() {
        let img = textured(64, 48, 3);
        let enc = SjpgEncoder::new(95).encode(&img).unwrap();
        let dec = decode(&enc).unwrap();
        assert_eq!((dec.width(), dec.height()), (64, 48));
        assert!(psnr(&img, &dec) > 30.0, "psnr={}", psnr(&img, &dec));
    }

    #[test]
    fn lower_quality_means_smaller_and_noisier() {
        let img = textured(96, 96, 9);
        let q95 = SjpgEncoder::new(95).encode(&img).unwrap();
        let q75 = SjpgEncoder::new(75).encode(&img).unwrap();
        let q30 = SjpgEncoder::new(30).encode(&img).unwrap();
        assert!(q75.len() < q95.len());
        assert!(q30.len() < q75.len());
        let p95 = psnr(&img, &decode(&q95).unwrap());
        let p75 = psnr(&img, &decode(&q75).unwrap());
        let p30 = psnr(&img, &decode(&q30).unwrap());
        assert!(p95 > p75 && p75 > p30, "{p95} {p75} {p30}");
    }

    #[test]
    fn non_multiple_of_block_dims_roundtrip() {
        let img = textured(37, 29, 1);
        let enc = SjpgEncoder::new(90).encode(&img).unwrap();
        let dec = decode(&enc).unwrap();
        assert_eq!((dec.width(), dec.height()), (37, 29));
        assert!(psnr(&img, &dec) > 25.0);
    }

    #[test]
    fn peek_dims_reads_header_only() {
        let img = textured(40, 24, 5);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        assert_eq!(peek_dims(&enc).unwrap(), (40, 24));
    }

    #[test]
    fn roi_decode_matches_full_decode() {
        let img = textured(128, 96, 7);
        let enc = SjpgEncoder::new(85).encode(&img).unwrap();
        let full = decode(&enc).unwrap();
        let roi = Rect::new(33, 17, 40, 30);
        let (partial, aligned, _) = decode_roi(&enc, roi).unwrap();
        assert_eq!(aligned, Rect::new(32, 16, 48, 32));
        for y in 0..aligned.h {
            for x in 0..aligned.w {
                for c in 0..3 {
                    assert_eq!(
                        partial.at(x, y, c),
                        full.at(aligned.x + x, aligned.y + y, c),
                        "mismatch at {x},{y},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn roi_decode_skips_work() {
        let img = textured(256, 256, 2);
        let enc = SjpgEncoder::new(85).encode(&img).unwrap();
        let (_, full_stats) = decode_with_stats(&enc).unwrap();
        let (_, _, roi_stats) = decode_roi(&enc, Rect::new(96, 96, 64, 64)).unwrap();
        assert!(roi_stats.blocks_idct < full_stats.blocks_idct / 4);
        assert!(roi_stats.symbols_decoded < full_stats.symbols_decoded / 2);
        assert!(roi_stats.rows_skipped > 0);
    }

    #[test]
    fn early_stop_rows_match_full_decode() {
        let img = textured(64, 64, 4);
        let enc = SjpgEncoder::new(85).encode(&img).unwrap();
        let full = decode(&enc).unwrap();
        let (top, stats) = decode_rows(&enc, 24).unwrap();
        assert_eq!(top.height(), 24);
        assert!(stats.rows_skipped == 5); // 8 rows total, 3 decoded
        for y in 0..24 {
            for x in 0..64 {
                assert_eq!(top.at(x, y, 0), full.at(x, y, 0));
            }
        }
    }

    /// The shared reference kernel a scaled-IDCT decode is judged against
    /// (same one `figure_lowres` and the workspace proptests use).
    fn box_down(img: &ImageU8, f: usize) -> ImageU8 {
        smol_imgproc::ops::box_downsample_u8(img, f).unwrap()
    }

    /// A smooth image (low-frequency gradients), where truncated-spectrum
    /// reconstruction is near-exact.
    fn smooth(w: usize, h: usize) -> ImageU8 {
        let mut img = ImageU8::zeros(w, h, 3);
        for y in 0..h {
            for x in 0..w {
                let fx = x as f64 / w as f64;
                let fy = y as f64 / h as f64;
                img.set(x, y, 0, (60.0 + 120.0 * fx) as u8);
                img.set(x, y, 1, (200.0 - 130.0 * fy) as u8);
                img.set(x, y, 2, (90.0 + 80.0 * fx * fy) as u8);
            }
        }
        img
    }

    #[test]
    fn scaled_decode_dims_and_stats() {
        let img = textured(128, 96, 6);
        let enc = SjpgEncoder::new(90).encode(&img).unwrap();
        let (_, full) = decode_with_stats(&enc).unwrap();
        for factor in [2usize, 4, 8] {
            let (small, stats) = decode_scaled(&enc, factor).unwrap();
            assert_eq!((small.width(), small.height()), (128 / factor, 96 / factor));
            // Entropy decoding is unavoidable (the stream is sequential)…
            assert_eq!(stats.symbols_decoded, full.symbols_decoded);
            // …but the transform work drops with the square-cube of the
            // scale: ≥8× fewer MACs at factor 2, ≥64× at factor 4.
            assert!(
                stats.idct_macs * (factor * factor * factor) as u64 <= full.idct_macs,
                "factor {factor}: {} vs {}",
                stats.idct_macs,
                full.idct_macs
            );
            assert!(stats.blocks_idct < full.blocks_idct / 4);
            assert_eq!(
                stats.pixels_written,
                (128 / factor) as u64 * (96 / factor) as u64
            );
        }
    }

    #[test]
    fn scaled_decode_factor_one_is_full_decode() {
        let img = textured(40, 32, 3);
        let enc = SjpgEncoder::new(85).encode(&img).unwrap();
        let (a, sa) = decode_with_stats(&enc).unwrap();
        let (b, sb) = decode_scaled(&enc, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn scaled_decode_tracks_box_downsample_of_full_decode() {
        let img = smooth(96, 64);
        let enc = SjpgEncoder::new(92).encode(&img).unwrap();
        let full = decode(&enc).unwrap();
        for factor in [2usize, 4] {
            let (small, _) = decode_scaled(&enc, factor).unwrap();
            let reference = box_down(&full, factor);
            let p = psnr(&reference, &small);
            assert!(p > 30.0, "factor {factor}: psnr {p}");
        }
    }

    #[test]
    fn scaled_decode_non_multiple_dims() {
        let img = smooth(61, 45);
        let enc = SjpgEncoder::new(90).encode(&img).unwrap();
        let (small, _) = decode_scaled(&enc, 4).unwrap();
        assert_eq!((small.width(), small.height()), (16, 12));
        // Edge pixels come from edge-replicated encode blocks — they must
        // still be plausible (close to the true boundary pixels).
        let reference = box_down(&decode(&enc).unwrap(), 4);
        assert!(psnr(&reference, &small) > 25.0);
    }

    #[test]
    fn scaled_decode_rejects_bad_factor() {
        let img = textured(32, 32, 1);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        assert!(decode_scaled(&enc, 3).is_err());
        assert!(decode_scaled(&enc, 16).is_err());
    }

    #[test]
    fn invalid_roi_rejected() {
        let img = textured(32, 32, 0);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        assert!(decode_roi(&enc, Rect::new(20, 20, 20, 20)).is_err());
        assert!(decode_roi(&enc, Rect::new(0, 0, 0, 0)).is_err());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let img = textured(16, 16, 0);
        let mut enc = SjpgEncoder::new(75).encode(&img).unwrap().to_vec();
        enc[0] ^= 0xFF;
        assert!(decode(&enc).is_err());
    }

    #[test]
    fn truncated_body_errors_not_panics() {
        let img = textured(64, 64, 8);
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        let cut = &enc[..enc.len() - enc.len() / 3];
        assert!(decode(cut).is_err());
    }

    #[test]
    fn amplitude_coding_roundtrip() {
        for v in [-2047i16, -1024, -255, -1, 0, 1, 2, 127, 1024, 2047] {
            let size = magnitude_category(v);
            if size == 0 {
                assert_eq!(v, 0);
                continue;
            }
            let bits = amplitude_bits(v, size);
            assert_eq!(decode_amplitude(bits, size), v, "v={v}");
        }
    }

    #[test]
    fn flat_image_compresses_extremely_well() {
        let img = ImageU8::from_vec(64, 64, 3, vec![128; 64 * 64 * 3]).unwrap();
        let enc = SjpgEncoder::new(75).encode(&img).unwrap();
        // 12 KiB raw → far below 2 KiB encoded.
        assert!(enc.len() < 2048, "len={}", enc.len());
        let dec = decode(&enc).unwrap();
        assert!(psnr(&img, &dec) > 40.0);
    }
}
