//! MSB-first bit-level I/O used by both codecs' entropy coders.

use crate::error::{Error, Result};

/// MSB-first bit writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits accumulated in `acc`, most-significant side filled first.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Writes the low `n` bits of `value`, MSB first. `n` must be ≤ 32.
    #[inline]
    pub fn put(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || value < (1u32 << n));
        self.acc = (self.acc << n) | value as u64;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Current position in bits (including unflushed bits).
    pub fn bit_pos(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Pads to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put(0, pad);
        }
    }

    /// Pads to a byte boundary and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.buf
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit cursor.
    pos: u64,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Total number of bits available.
    pub fn len_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Moves the cursor to an absolute bit position (used to seek to MCU-row
    /// restart points for partial decoding).
    pub fn seek_bits(&mut self, pos: u64) -> Result<()> {
        if pos > self.len_bits() {
            return Err(Error::Truncated {
                context: "BitReader::seek_bits",
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Reads one bit.
    #[inline]
    pub fn bit(&mut self) -> Result<u32> {
        if self.pos >= self.len_bits() {
            return Err(Error::Truncated {
                context: "BitReader::bit",
            });
        }
        let byte = self.data[(self.pos >> 3) as usize];
        let bit = (byte >> (7 - (self.pos & 7))) & 1;
        self.pos += 1;
        Ok(bit as u32)
    }

    /// Reads `n` bits (≤ 32), MSB first.
    #[inline]
    pub fn bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!(n <= 32);
        if self.pos + n as u64 > self.len_bits() {
            return Err(Error::Truncated {
                context: "BitReader::bits",
            });
        }
        let mut v: u32 = 0;
        let mut remaining = n;
        // Fast path: pull whole bytes when aligned enough.
        while remaining > 0 {
            let byte_idx = (self.pos >> 3) as usize;
            let bit_off = (self.pos & 7) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(remaining);
            let byte = self.data[byte_idx] as u32;
            let chunk = (byte >> (avail - take)) & ((1u32 << take) - 1);
            v = (v << take) | chunk;
            self.pos += take as u64;
            remaining -= take;
        }
        Ok(v)
    }

    /// Returns the next 16 bits MSB-first *without* consuming them,
    /// zero-padded past the end of the stream. The fast entropy path peeks
    /// a window, resolves a symbol from a lookup table, then consumes its
    /// actual length with [`BitReader::skip_bits`] (which still enforces
    /// the stream bound, so padding can never be silently consumed).
    #[inline]
    pub fn peek16(&self) -> u32 {
        let byte = (self.pos >> 3) as usize;
        let shift = (self.pos & 7) as u32;
        if let Some(chunk) = self.data.get(byte..byte + 4) {
            // Hot case: one 32-bit load covers any 16-bit window.
            let w = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
            (w >> (16 - shift)) & 0xFFFF
        } else {
            let b = |i: usize| -> u32 { self.data.get(byte + i).copied().unwrap_or(0) as u32 };
            let window = (b(0) << 16) | (b(1) << 8) | b(2);
            (window >> (8 - shift)) & 0xFFFF
        }
    }

    /// Consumes `n` bits previously inspected with [`BitReader::peek16`].
    /// Errors if that would move past the end of the stream.
    #[inline]
    pub fn skip_bits(&mut self, n: u32) -> Result<()> {
        if self.pos + n as u64 > self.len_bits() {
            return Err(Error::Truncated {
                context: "BitReader::skip_bits",
            });
        }
        self.pos += n as u64;
        Ok(())
    }

    /// Skips to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = (self.pos + 7) & !7;
    }
}

/// Register-resident bit cursor for the fast entropy path: upcoming
/// stream bits live left-aligned in a u64 accumulator, so peeking and
/// consuming are plain shifts with no per-symbol memory access or bounds
/// check — one 8-byte load refills the accumulator every ~4 symbols.
///
/// Reads past the end of the stream return zero bits (the accumulator is
/// zero-padded); `pos` keeps advancing, so the overrun is detected when
/// the caller syncs back with [`BitReader::seek_bits`], which errors on
/// an out-of-range position. Callers therefore get the same `Err` on
/// truncated input as the checked reader, at block rather than symbol
/// granularity.
#[derive(Debug)]
pub struct FastCursor<'a> {
    data: &'a [u8],
    /// Stream bits `[pos, pos + avail)` left-aligned: bit `pos` is bit 63.
    acc: u64,
    avail: u32,
    /// Absolute bit position of the next unconsumed bit.
    pos: u64,
    /// Next byte of `data` to pull into `acc` (`next_byte * 8 ≥ pos + avail`).
    next_byte: usize,
}

impl<'a> FastCursor<'a> {
    /// Starts a cursor at the reader's current position (any bit offset).
    #[inline]
    pub fn from_reader(r: &BitReader<'a>) -> Self {
        let pos = r.bit_pos();
        let mut c = FastCursor {
            data: r.data,
            acc: 0,
            avail: 0,
            pos,
            next_byte: (pos >> 3) as usize,
        };
        c.refill();
        // Drop the already-consumed bits of the containing byte; `pos`
        // already counts them.
        let off = (pos & 7) as u32;
        c.acc <<= off;
        c.avail = c.avail.saturating_sub(off);
        c
    }

    /// Absolute bit position of the next unconsumed bit (may exceed the
    /// stream length after reading into the zero padding).
    #[inline]
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Ensures at least 32 valid bits are available (or the stream is
    /// exhausted), topping the accumulator up to 57+ when it does reload.
    /// Call before each bounded read burst: 32 bits cover any code +
    /// amplitude pair (≤ 31 bits), and the ≥ 32 early-out skips the
    /// 8-byte load entirely on most calls.
    #[inline]
    pub fn refill(&mut self) {
        if self.avail >= 32 {
            return;
        }
        if self.next_byte + 8 <= self.data.len() {
            let w = u64::from_be_bytes(
                self.data[self.next_byte..self.next_byte + 8]
                    .try_into()
                    .expect("8 bytes"),
            );
            // OR in the whole bytes that fit. The partial trailing byte's
            // top bits also land in `acc` uncounted — harmless: they hold
            // the true stream values at those positions, and the next
            // refill ORs the same byte over them idempotently.
            self.acc |= w >> self.avail;
            let added = (64 - self.avail) & !7;
            self.avail += added;
            self.next_byte += (added >> 3) as usize;
        } else {
            while self.avail <= 56 && self.next_byte < self.data.len() {
                self.acc |= (self.data[self.next_byte] as u64) << (56 - self.avail);
                self.next_byte += 1;
                self.avail += 8;
            }
        }
    }

    /// The next 32 bits MSB-first, zero-padded past the end of the stream.
    #[inline]
    pub fn peek32(&self) -> u32 {
        (self.acc >> 32) as u32
    }

    /// Consumes `n` bits previously inspected with [`Self::peek32`];
    /// `n` must be ≤ 32 and nonzero consumption past the stream end is
    /// caught at sync time.
    #[inline]
    pub fn skip(&mut self, n: u32) {
        debug_assert!(n <= 32);
        self.acc <<= n;
        self.avail = self.avail.saturating_sub(n);
        self.pos += n as u64;
    }

    /// Moves the reader to the cursor's position, erroring if the cursor
    /// ran past the end of the stream (truncated input).
    #[inline]
    pub fn sync(&self, r: &mut BitReader<'a>) -> Result<()> {
        r.seek_bits(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b1, 1);
        w.put(0b1011, 4);
        w.put(0xABCD, 16);
        w.put(0, 3);
        w.put(0x7FFF_FFFF, 31);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(1).unwrap(), 0b1);
        assert_eq!(r.bits(4).unwrap(), 0b1011);
        assert_eq!(r.bits(16).unwrap(), 0xABCD);
        assert_eq!(r.bits(3).unwrap(), 0);
        assert_eq!(r.bits(31).unwrap(), 0x7FFF_FFFF);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.align_byte();
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn bit_pos_tracks_written_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_pos(), 0);
        w.put(0, 5);
        assert_eq!(w.bit_pos(), 5);
        w.put(0, 11);
        assert_eq!(w.bit_pos(), 16);
    }

    #[test]
    fn reader_detects_truncation() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert!(r.bits(8).is_ok());
        assert!(r.bit().is_err());
    }

    #[test]
    fn seek_enables_random_access() {
        let mut w = BitWriter::new();
        for i in 0..16u32 {
            w.put(i, 4);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.seek_bits(4 * 7).unwrap();
        assert_eq!(r.bits(4).unwrap(), 7);
        assert!(r.seek_bits(bytes.len() as u64 * 8 + 1).is_err());
    }

    #[test]
    fn peek_matches_read_at_every_offset() {
        let mut w = BitWriter::new();
        w.put(0xDEAD_BEEF, 32);
        w.put(0x1234_5678, 32);
        let bytes = w.finish();
        for start in 0..48u64 {
            let mut r = BitReader::new(&bytes);
            r.seek_bits(start).unwrap();
            let peeked = r.peek16();
            let read = r.bits(16).unwrap();
            assert_eq!(peeked, read, "offset {start}");
        }
        // Past-the-end peeks are zero-padded; consumption stays bounded.
        let mut r = BitReader::new(&bytes);
        r.seek_bits(60).unwrap();
        assert_eq!(r.peek16(), (r.bits(4).unwrap()) << 12);
        assert!(r.skip_bits(1).is_err());
    }

    #[test]
    fn fast_cursor_matches_reader_at_every_offset() {
        let mut w = BitWriter::new();
        for i in 0..24u32 {
            w.put(i.wrapping_mul(0x9E37) & 0x3FF, 10);
        }
        let bytes = w.finish();
        for start in 0..64u64 {
            let mut r = BitReader::new(&bytes);
            r.seek_bits(start).unwrap();
            let mut c = FastCursor::from_reader(&r);
            // Consume a mixed pattern of widths, checking each peek
            // against the checked reader.
            let mut check = r.clone();
            for n in [3u32, 11, 1, 16, 7, 25] {
                c.refill();
                let have = (bytes.len() as u64 * 8).saturating_sub(check.bit_pos());
                if have >= n as u64 {
                    let expect = check.bits(n).unwrap();
                    assert_eq!(c.peek32() >> (32 - n), expect, "start={start} n={n}");
                }
                c.skip(n);
            }
            assert_eq!(c.bit_pos(), start + 63);
        }
    }

    #[test]
    fn fast_cursor_zero_pads_and_sync_detects_overrun() {
        let bytes = [0xA5u8, 0x5A];
        let mut r = BitReader::new(&bytes);
        let mut c = FastCursor::from_reader(&r);
        c.refill();
        assert_eq!(c.peek32(), 0xA55A_0000);
        c.skip(16);
        c.refill();
        assert_eq!(c.peek32(), 0, "past-end bits are zero padding");
        assert!(c.sync(&mut r).is_ok(), "at the boundary is still in range");
        c.skip(1);
        assert!(c.sync(&mut r).is_err(), "past the end errors at sync");
    }

    #[test]
    fn single_bits_match_multibit_read() {
        let mut w = BitWriter::new();
        w.put(0b1101_0010_1100_0111, 16);
        let bytes = w.finish();
        let mut r1 = BitReader::new(&bytes);
        let mut v = 0u32;
        for _ in 0..16 {
            v = (v << 1) | r1.bit().unwrap();
        }
        assert_eq!(v, 0b1101_0010_1100_0111);
    }
}
