//! MSB-first bit-level I/O used by both codecs' entropy coders.

use crate::error::{Error, Result};

/// MSB-first bit writer over a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits accumulated in `acc`, most-significant side filled first.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> Self {
        BitWriter::default()
    }

    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Writes the low `n` bits of `value`, MSB first. `n` must be ≤ 32.
    #[inline]
    pub fn put(&mut self, value: u32, n: u32) {
        debug_assert!(n <= 32);
        debug_assert!(n == 32 || value < (1u32 << n));
        self.acc = (self.acc << n) | value as u64;
        self.nbits += n;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Current position in bits (including unflushed bits).
    pub fn bit_pos(&self) -> u64 {
        self.buf.len() as u64 * 8 + self.nbits as u64
    }

    /// Pads to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put(0, pad);
        }
    }

    /// Pads to a byte boundary and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_byte();
        self.buf
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit cursor.
    pos: u64,
}

impl<'a> BitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Total number of bits available.
    pub fn len_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Moves the cursor to an absolute bit position (used to seek to MCU-row
    /// restart points for partial decoding).
    pub fn seek_bits(&mut self, pos: u64) -> Result<()> {
        if pos > self.len_bits() {
            return Err(Error::Truncated {
                context: "BitReader::seek_bits",
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Reads one bit.
    #[inline]
    pub fn bit(&mut self) -> Result<u32> {
        if self.pos >= self.len_bits() {
            return Err(Error::Truncated {
                context: "BitReader::bit",
            });
        }
        let byte = self.data[(self.pos >> 3) as usize];
        let bit = (byte >> (7 - (self.pos & 7))) & 1;
        self.pos += 1;
        Ok(bit as u32)
    }

    /// Reads `n` bits (≤ 32), MSB first.
    #[inline]
    pub fn bits(&mut self, n: u32) -> Result<u32> {
        debug_assert!(n <= 32);
        if self.pos + n as u64 > self.len_bits() {
            return Err(Error::Truncated {
                context: "BitReader::bits",
            });
        }
        let mut v: u32 = 0;
        let mut remaining = n;
        // Fast path: pull whole bytes when aligned enough.
        while remaining > 0 {
            let byte_idx = (self.pos >> 3) as usize;
            let bit_off = (self.pos & 7) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(remaining);
            let byte = self.data[byte_idx] as u32;
            let chunk = (byte >> (avail - take)) & ((1u32 << take) - 1);
            v = (v << take) | chunk;
            self.pos += take as u64;
            remaining -= take;
        }
        Ok(v)
    }

    /// Skips to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = (self.pos + 7) & !7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b1, 1);
        w.put(0b1011, 4);
        w.put(0xABCD, 16);
        w.put(0, 3);
        w.put(0x7FFF_FFFF, 31);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(1).unwrap(), 0b1);
        assert_eq!(r.bits(4).unwrap(), 0b1011);
        assert_eq!(r.bits(16).unwrap(), 0xABCD);
        assert_eq!(r.bits(3).unwrap(), 0);
        assert_eq!(r.bits(31).unwrap(), 0x7FFF_FFFF);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.align_byte();
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn bit_pos_tracks_written_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_pos(), 0);
        w.put(0, 5);
        assert_eq!(w.bit_pos(), 5);
        w.put(0, 11);
        assert_eq!(w.bit_pos(), 16);
    }

    #[test]
    fn reader_detects_truncation() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert!(r.bits(8).is_ok());
        assert!(r.bit().is_err());
    }

    #[test]
    fn seek_enables_random_access() {
        let mut w = BitWriter::new();
        for i in 0..16u32 {
            w.put(i, 4);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.seek_bits(4 * 7).unwrap();
        assert_eq!(r.bits(4).unwrap(), 7);
        assert!(r.seek_bits(bytes.len() as u64 * 8 + 1).is_err());
    }

    #[test]
    fn single_bits_match_multibit_read() {
        let mut w = BitWriter::new();
        w.put(0b1101_0010_1100_0111, 16);
        let bytes = w.finish();
        let mut r1 = BitReader::new(&bytes);
        let mut v = 0u32;
        for _ in 0..16 {
            v = (v << 1) | r1.bit().unwrap();
        }
        assert_eq!(v, 0b1101_0010_1100_0111);
    }
}
