//! Shared experiment plumbing: encoded variant sets, preprocessing
//! profiling, model training caches, and quick-mode scaling.

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_codec::{EncodedImage, Format};
use smol_core::{CandidateSpec, DecodeMode, InputVariant, Planner, PlannerConfig, QueryPlan};
use smol_data::{generate_stills, throughput_images, StillDataset, StillSpec};
use smol_imgproc::ops::resize::resize_short_edge_u8;
use smol_imgproc::ImageU8;
use smol_nn::{ClassifierConfig, InputFormat, SmolClassifier, ThumbCodec, Tier};
use smol_runtime::{Profiler, RuntimeOptions};

/// Whether the harness runs in quick mode (`SMOL_QUICK=1`): smaller image
/// counts and clips, same code paths. Full mode reproduces the shapes with
/// more statistical weight.
pub fn quick_mode() -> bool {
    std::env::var("SMOL_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Scales a sample count down in quick mode.
pub fn scaled(n: usize) -> usize {
    if quick_mode() {
        (n / 4).max(8)
    } else {
        n
    }
}

/// Number of worker threads standing in for the g4dn.xlarge's 4 vCPUs.
pub const VCPUS: usize = 4;

/// The four input variants of the still-image experiments (§8.1):
/// full-resolution sjpg(q=95) plus 161-short-side thumbnails in spng,
/// sjpg(q=95), and sjpg(q=75).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantKind {
    FullRes,
    ThumbPng,
    ThumbQ95,
    ThumbQ75,
}

impl VariantKind {
    pub fn all() -> [VariantKind; 4] {
        [
            VariantKind::FullRes,
            VariantKind::ThumbPng,
            VariantKind::ThumbQ95,
            VariantKind::ThumbQ75,
        ]
    }

    pub fn label(&self) -> &'static str {
        match self {
            VariantKind::FullRes => "full-res sjpg(q=95)",
            VariantKind::ThumbPng => "161 spng",
            VariantKind::ThumbQ95 => "161 sjpg(q=95)",
            VariantKind::ThumbQ75 => "161 sjpg(q=75)",
        }
    }

    pub fn is_thumbnail(&self) -> bool {
        !matches!(self, VariantKind::FullRes)
    }

    /// The accuracy-track input format this throughput variant maps to.
    pub fn accuracy_format(&self, thumb_short: usize) -> InputFormat {
        match self {
            VariantKind::FullRes => InputFormat::FullRes,
            VariantKind::ThumbPng => InputFormat::Thumbnail {
                short: thumb_short,
                codec: ThumbCodec::Lossless,
            },
            VariantKind::ThumbQ95 => InputFormat::Thumbnail {
                short: thumb_short,
                codec: ThumbCodec::Lossy { quality: 95 },
            },
            VariantKind::ThumbQ75 => InputFormat::Thumbnail {
                short: thumb_short,
                codec: ThumbCodec::Lossy { quality: 75 },
            },
        }
    }
}

/// Encoded throughput-track images for one dataset, in all variants.
pub struct VariantSet {
    pub spec: StillSpec,
    pub full: Vec<EncodedImage>,
    pub thumb_png: Vec<EncodedImage>,
    pub thumb_q95: Vec<EncodedImage>,
    pub thumb_q75: Vec<EncodedImage>,
}

impl VariantSet {
    /// Generates and encodes `n` throughput-track images for the dataset.
    pub fn build(spec: &StillSpec, n: usize, seed: u64) -> Self {
        let natives = throughput_images(spec, seed, n);
        let thumbs: Vec<ImageU8> = natives
            .iter()
            .map(|img| resize_short_edge_u8(img, spec.tput_thumb_short).expect("thumbnail resize"))
            .collect();
        let encode_all = |imgs: &[ImageU8], fmt: Format| -> Vec<EncodedImage> {
            imgs.iter()
                .map(|img| EncodedImage::encode(img, fmt).expect("encode"))
                .collect()
        };
        VariantSet {
            spec: spec.clone(),
            full: encode_all(&natives, Format::sjpg(95)),
            thumb_png: encode_all(&thumbs, Format::Spng),
            thumb_q95: encode_all(&thumbs, Format::sjpg(95)),
            thumb_q75: encode_all(&thumbs, Format::sjpg(75)),
        }
    }

    pub fn items(&self, kind: VariantKind) -> &[EncodedImage] {
        match kind {
            VariantKind::FullRes => &self.full,
            VariantKind::ThumbPng => &self.thumb_png,
            VariantKind::ThumbQ95 => &self.thumb_q95,
            VariantKind::ThumbQ75 => &self.thumb_q75,
        }
    }

    /// The planner-facing input variant descriptor.
    pub fn input_variant(&self, kind: VariantKind) -> InputVariant {
        let (w, h) = match kind {
            VariantKind::FullRes => self.spec.tput_native,
            _ => {
                let first = &self.items(kind)[0];
                (first.width, first.height)
            }
        };
        let format = match kind {
            VariantKind::FullRes | VariantKind::ThumbQ95 => Format::sjpg(95),
            VariantKind::ThumbQ75 => Format::sjpg(75),
            VariantKind::ThumbPng => Format::Spng,
        };
        let v = InputVariant::new(kind.label(), format, w, h);
        if kind.is_thumbnail() {
            v.thumbnail()
        } else {
            v
        }
    }

    /// Builds the executable plan for (model, variant) under a planner
    /// configuration, and profiles its preprocessing throughput through the
    /// pipelined harness (the paper's footnote-1 methodology).
    pub fn plan_and_profile(
        &self,
        planner: &Planner,
        model: ModelKind,
        kind: VariantKind,
        threads: usize,
    ) -> (QueryPlan, f64) {
        let input = self.input_variant(kind);
        let plan = QueryPlan {
            dnn: model,
            input: input.clone(),
            preproc: planner.build_preproc(&input),
            decode: planner.decode_mode(&input),
            batch: planner.config.batch,
            extra_stages: Vec::new(),
        };
        let opts = RuntimeOptions {
            producers: threads,
            ..Default::default()
        };
        let tput = Profiler::new(opts).preproc_throughput(self.items(kind), &plan);
        (plan, tput)
    }
}

/// Trained accuracy-track models for one dataset: per tier, a regular model
/// and a low-resolution-augmented model.
pub struct ModelZoo {
    pub dataset: StillDataset,
    pub thumb_short: usize,
    /// (tier, regular, augmented)
    pub models: Vec<(Tier, SmolClassifier, SmolClassifier)>,
}

impl ModelZoo {
    /// Trains the full ladder (regular + augmented per tier).
    pub fn train(spec: &StillSpec, seed: u64) -> Self {
        let dataset = generate_stills(spec, seed);
        let png_thumb = InputFormat::Thumbnail {
            short: spec.acc_thumb_short,
            codec: ThumbCodec::Lossless,
        };
        let models = Tier::ladder()
            .into_iter()
            .map(|tier| {
                let reg = SmolClassifier::train(
                    &ClassifierConfig::new(tier),
                    &dataset.train,
                    &dataset.train_labels,
                    dataset.n_classes,
                );
                let aug = SmolClassifier::train(
                    &ClassifierConfig::new(tier).with_augmentation(png_thumb),
                    &dataset.train,
                    &dataset.train_labels,
                    dataset.n_classes,
                );
                (tier, reg, aug)
            })
            .collect();
        ModelZoo {
            dataset,
            thumb_short: spec.acc_thumb_short,
            models,
        }
    }

    /// Accuracy of a tier's model on a throughput-variant's format; Smol
    /// uses the augmented model on thumbnails, the regular model otherwise.
    pub fn accuracy(&self, tier: Tier, kind: VariantKind, augmented: bool) -> f64 {
        let (_, reg, aug) = self
            .models
            .iter()
            .find(|(t, _, _)| *t == tier)
            .expect("tier trained");
        let model = if augmented && kind.is_thumbnail() {
            aug
        } else {
            reg
        };
        model.evaluate(
            &self.dataset.test,
            &self.dataset.test_labels,
            kind.accuracy_format(self.thumb_short),
        )
    }

    pub fn model(&self, tier: Tier, augmented: bool) -> &SmolClassifier {
        let (_, reg, aug) = self
            .models
            .iter()
            .find(|(t, _, _)| *t == tier)
            .expect("tier trained");
        if augmented {
            aug
        } else {
            reg
        }
    }
}

/// Maps a classifier tier onto the virtual-accelerator model used for its
/// throughput accounting.
pub fn tier_model(tier: Tier) -> ModelKind {
    match tier {
        Tier::T18 => ModelKind::ResNet18,
        Tier::T34 => ModelKind::ResNet34,
        Tier::T50 => ModelKind::ResNet50,
    }
}

/// Standard T4 + TensorRT device at real time scale.
pub fn t4_device() -> VirtualDevice {
    VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 1.0)
}

/// The default planner used by the harnesses.
pub fn default_planner() -> Planner {
    Planner::new(PlannerConfig::default())
}

/// Convenience: a candidate spec from profiled numbers.
pub fn candidate(
    dnn: ModelKind,
    input: InputVariant,
    accuracy: f64,
    preproc_throughput: f64,
) -> CandidateSpec {
    CandidateSpec {
        dnn,
        input,
        accuracy,
        preproc_throughput,
        reduced_accuracy: None,
        cascade: None,
        routing: Vec::new(),
        video: None,
        storage: None,
    }
}

/// Builds a single-model plan without profiling (for pipeline-only runs).
pub fn simple_plan(
    planner: &Planner,
    model: ModelKind,
    input: InputVariant,
    batch: usize,
) -> QueryPlan {
    QueryPlan {
        dnn: model,
        input: input.clone(),
        preproc: planner.build_preproc(&input),
        decode: planner.decode_mode(&input),
        batch,
        extra_stages: Vec::new(),
    }
}

/// A non-optimizing planner (lesion baselines): standard preprocessing,
/// full decode.
pub fn naive_planner() -> Planner {
    Planner::new(PlannerConfig {
        enable_dag_opt: false,
        ..Default::default()
    })
}

/// Decode-mode helper for printing. Deliberately exhaustive (no `_` arm):
/// a new `DecodeMode` variant must fail to compile here rather than
/// silently mislabel a report.
pub fn decode_label(mode: &DecodeMode) -> String {
    match mode {
        DecodeMode::Full => "full".to_string(),
        DecodeMode::CentralRoi { crop_w, crop_h } => format!("roi {crop_w}x{crop_h}"),
        DecodeMode::EarlyStopRows { rows } => format!("rows {rows}"),
        DecodeMode::ReducedResolution { factor } => format!("1/{factor} scaled-idct"),
        DecodeMode::Video { selection, deblock } => {
            let sel = match selection {
                smol_core::FrameSelection::All => "all frames".to_string(),
                smol_core::FrameSelection::Keyframes => "keyframes".to_string(),
                smol_core::FrameSelection::Stride(n) => format!("every {n}th frame"),
            };
            format!("{sel}{}", if *deblock { "" } else { ", no deblock" })
        }
    }
}
