//! # smol-bench
//!
//! The experiment harness: shared plumbing ([`context`], [`report`]) and
//! one binary per paper table/figure (see `src/bin/`). Each binary prints
//! a paper-vs-measured table and writes a CSV under `results/`.
//!
//! Quick mode (`SMOL_QUICK=1`) shrinks sample counts for smoke runs; full
//! runs reproduce the shapes with more statistical weight.

pub mod context;
pub mod imagexp;
pub mod report;

pub use context::{
    candidate, decode_label, default_planner, naive_planner, quick_mode, scaled, simple_plan,
    t4_device, tier_model, ModelZoo, VariantKind, VariantSet, VCPUS,
};
pub use report::{fmt_pct, fmt_ratio, fmt_tput, results_dir, Table};
