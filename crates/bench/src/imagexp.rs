//! Shared engine for the image-analytics experiments (Figures 4–6):
//! builds (accuracy, throughput) points for the naive baseline, Tahoma, and
//! Smol, under configurable optimization toggles.
//!
//! Accuracy comes from really-trained models ([`ModelZoo`], cascades);
//! throughput combines pipelined-profiled preprocessing rates with the
//! calibrated device execution rates through the validated `min` cost model
//! (Table 3 / §8.2 validate that model against full pipeline runs).

use crate::context::{tier_model, ModelZoo, VariantKind, VariantSet, VCPUS};
use smol_accel::{throughput as model_throughput, ExecutionEnv, GpuModel, ModelKind};
use smol_core::{cascade_exec_throughput, CascadeStage, Planner, PlannerConfig};
use smol_nn::{InputFormat, Tier};
use std::collections::HashMap;
use std::sync::Arc;

/// One (accuracy, throughput) point in a Figure-4-style plot.
#[derive(Debug, Clone)]
pub struct Point {
    pub system: &'static str,
    pub config: String,
    pub accuracy: f64,
    pub throughput: f64,
}

/// Which Smol optimizations are active (the Figure 5/6 toggles).
#[derive(Debug, Clone, Copy)]
pub struct Toggles {
    pub low_res: bool,
    pub preproc_opt: bool,
}

impl Toggles {
    pub fn all() -> Self {
        Toggles {
            low_res: true,
            preproc_opt: true,
        }
    }
}

fn planner(preproc_opt: bool) -> Planner {
    Planner::new(PlannerConfig {
        enable_dag_opt: preproc_opt,
        ..Default::default()
    })
}

/// Profiled preprocessing throughputs for every (variant, opt) pair.
pub struct PreprocProfile {
    rates: HashMap<(VariantKind, bool), f64>,
}

impl PreprocProfile {
    /// Profiles all variants under both optimized and unoptimized planners.
    pub fn measure(set: &VariantSet) -> Self {
        let mut rates = HashMap::new();
        for opt in [true, false] {
            let p = planner(opt);
            for kind in VariantKind::all() {
                let (_, tput) = set.plan_and_profile(&p, ModelKind::ResNet50, kind, VCPUS);
                rates.insert((kind, opt), tput);
            }
        }
        PreprocProfile { rates }
    }

    pub fn rate(&self, kind: VariantKind, opt: bool) -> f64 {
        *self.rates.get(&(kind, opt)).expect("profiled")
    }
}

fn exec_rate(tier: Tier) -> f64 {
    model_throughput(tier_model(tier), GpuModel::T4, ExecutionEnv::TensorRt, 64)
}

/// The naive baseline: standard ResNets on full-resolution data, standard
/// (unoptimized) preprocessing.
pub fn naive_points(zoo: &ModelZoo, profile: &PreprocProfile) -> Vec<Point> {
    let preproc = profile.rate(VariantKind::FullRes, false);
    Tier::ladder()
        .into_iter()
        .map(|tier| Point {
            system: "naive",
            config: tier.name().to_string(),
            accuracy: zoo.accuracy(tier, VariantKind::FullRes, false),
            throughput: preproc.min(exec_rate(tier)),
        })
        .collect()
}

/// Smol: the D × F product under the given toggles; augmented models on
/// thumbnails, ROI/DAG-optimized preprocessing when enabled.
pub fn smol_points(zoo: &ModelZoo, profile: &PreprocProfile, toggles: Toggles) -> Vec<Point> {
    let mut points = Vec::new();
    for kind in VariantKind::all() {
        if kind.is_thumbnail() && !toggles.low_res {
            continue;
        }
        let preproc = profile.rate(kind, toggles.preproc_opt);
        for tier in Tier::ladder() {
            points.push(Point {
                system: "SMOL",
                config: format!("{} @ {}", tier.name(), kind.label()),
                accuracy: zoo.accuracy(tier, kind, true),
                throughput: preproc.min(exec_rate(tier)),
            });
        }
    }
    points
}

/// Tahoma: eight specialized-CNN cascades into the target model, on
/// full-resolution data with standard preprocessing. Cascade overheads
/// (extra resize + copy per passed image, Appendix/§8.3) are charged on the
/// CPU side.
pub fn tahoma_points(
    zoo: &ModelZoo,
    profile: &PreprocProfile,
    quick: bool,
    seed: u64,
) -> Vec<Point> {
    let target = Arc::new(zoo.model(Tier::T50, false).clone());
    let variants = smol_analytics::tahoma_variants();
    let take = if quick { 4 } else { variants.len() };
    let preproc = profile.rate(VariantKind::FullRes, false);
    let target_rate = exec_rate(Tier::T50);
    let spec_rate = model_throughput(
        ModelKind::TahomaSmall,
        GpuModel::T4,
        ExecutionEnv::TensorRt,
        256,
    );
    variants
        .into_iter()
        .take(take)
        .enumerate()
        .map(|(i, variant)| {
            let cascade = smol_analytics::Cascade::train(
                variant,
                target.clone(),
                &zoo.dataset.train,
                &zoo.dataset.train_labels,
                zoo.dataset.n_classes,
                seed + i as u64,
            );
            let eval = cascade.evaluate(
                &zoo.dataset.test,
                &zoo.dataset.test_labels,
                InputFormat::FullRes,
            );
            let stages = vec![
                CascadeStage::new(spec_rate, 1.0),
                CascadeStage::new(target_rate, eval.pass_rate),
            ];
            let exec = cascade_exec_throughput(&stages);
            // Passed images are re-preprocessed for the target's input
            // resolution and copied again (§8.3's "coalescing and further
            // preprocessing operations").
            let cascade_cpu = 1.0 / (1.0 / preproc * (1.0 + 0.5 * eval.pass_rate));
            Point {
                system: "Tahoma",
                config: format!(
                    "{}@{}px thr {:.2}",
                    variant.tier.name(),
                    variant.input_size,
                    variant.threshold
                ),
                accuracy: eval.accuracy,
                throughput: cascade_cpu.min(exec),
            }
        })
        .collect()
}

/// Pareto frontier over points (max throughput per accuracy level).
pub fn pareto(points: &[Point]) -> Vec<Point> {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| {
        b.throughput
            .partial_cmp(&a.throughput)
            .expect("finite")
            .then(b.accuracy.partial_cmp(&a.accuracy).expect("finite"))
    });
    let mut out: Vec<Point> = Vec::new();
    let mut best = f64::NEG_INFINITY;
    for p in sorted {
        if p.accuracy > best {
            best = p.accuracy;
            out.push(p);
        }
    }
    out
}

/// Max speedup of `ours` over each `baseline` point at no accuracy loss:
/// returns (baseline config, baseline tput, best tput, speedup).
pub fn speedup_at_fixed_accuracy(
    ours: &[Point],
    baseline: &[Point],
) -> Vec<(String, f64, f64, f64)> {
    baseline
        .iter()
        .map(|b| {
            let best = ours
                .iter()
                .filter(|p| p.accuracy >= b.accuracy - 1e-9)
                .map(|p| p.throughput)
                .fold(0.0f64, f64::max);
            (b.config.clone(), b.throughput, best, best / b.throughput)
        })
        .collect()
}
