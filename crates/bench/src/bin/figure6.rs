//! Figure 6: factor analysis — successively add the preprocessing
//! optimizations and then low-resolution data; each addition must improve
//! the Pareto frontier.

use smol_bench::imagexp::{pareto, smol_points, PreprocProfile, Toggles};
use smol_bench::{fmt_pct, fmt_tput, scaled, ModelZoo, Table, VariantSet};
use smol_data::still_catalog;

fn main() {
    let n_images = scaled(192);
    for spec in still_catalog() {
        println!("\n=== {} ===", spec.name);
        let zoo = ModelZoo::train(&spec, 42);
        let set = VariantSet::build(&spec, n_images, 13);
        let profile = PreprocProfile::measure(&set);

        let configs = [
            (
                "Basic",
                Toggles {
                    low_res: false,
                    preproc_opt: false,
                },
            ),
            (
                "+Preproc",
                Toggles {
                    low_res: false,
                    preproc_opt: true,
                },
            ),
            ("+Lowres & preproc", Toggles::all()),
        ];
        let mut table = Table::new(
            format!(
                "Figure 6 — factor analysis, {} (Pareto frontiers)",
                spec.name
            ),
            &["Variant", "Config", "Accuracy", "Throughput (im/s)"],
        );
        let mut peaks = Vec::new();
        for (name, toggles) in configs {
            let points = smol_points(&zoo, &profile, toggles);
            let frontier = pareto(&points);
            peaks.push(frontier.iter().map(|p| p.throughput).fold(0.0, f64::max));
            for p in frontier {
                table.row(&[
                    name.to_string(),
                    p.config,
                    fmt_pct(p.accuracy),
                    fmt_tput(p.throughput),
                ]);
            }
        }
        table.print();
        table.write_csv(&format!("figure6_{}", spec.name));
        println!(
            "  shape: peak throughput monotone across factors: {} ({} -> {} -> {})",
            peaks[0] <= peaks[1] + 1e-9 && peaks[1] <= peaks[2] + 1e-9,
            fmt_tput(peaks[0]),
            fmt_tput(peaks[1]),
            fmt_tput(peaks[2])
        );
    }
}
