//! Figure 1: per-image breakdown of end-to-end inference for ResNet-50 and
//! ResNet-18 — decode / resize / normalize / split on the CPU vs DNN
//! execution on the accelerator.
//!
//! The headline claim: preprocessing achieves 7.1× (RN-50) and 22.9×
//! (RN-18) *lower* throughput than DNN execution on the inference-optimized
//! instance. Our decode is a scalar from-scratch codec on different images,
//! so absolute µs differ; the bottleneck ordering and the widening gap for
//! smaller DNNs are the reproduced shape.

use smol_accel::ModelKind;
use smol_bench::{scaled, t4_device, Table, VCPUS};
use smol_codec::{sjpg, SjpgEncoder};
use smol_data::{still_catalog, throughput_images};
use smol_imgproc::ops::fused::fused_convert_normalize_split;
use smol_imgproc::ops::layout::{hwc_to_chw, to_f32};
use smol_imgproc::ops::normalize::{normalize_hwc, Normalization};
use smol_imgproc::ops::{center_crop_u8, resize_short_edge_u8};
use std::time::Instant;

fn per_image_us<F: FnMut(usize)>(n: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        f(i);
    }
    start.elapsed().as_secs_f64() * 1e6 / n as f64
}

fn main() {
    let spec = &still_catalog()[3]; // imagenet-sim, 320x240 natives
    let n = scaled(64);
    println!(
        "measuring per-stage costs over {n} images of {}x{}...",
        spec.tput_native.0, spec.tput_native.1
    );
    let natives = throughput_images(spec, 7, n);
    let encoder = SjpgEncoder::new(95);
    let encoded: Vec<_> = natives
        .iter()
        .map(|img| encoder.encode(img).unwrap())
        .collect();

    // Stage timings (single core).
    let decode_us = per_image_us(n, |i| {
        std::hint::black_box(sjpg::decode(&encoded[i]).unwrap());
    });
    let decoded: Vec<_> = encoded.iter().map(|e| sjpg::decode(e).unwrap()).collect();
    let resize_us = per_image_us(n, |i| {
        std::hint::black_box(resize_short_edge_u8(&decoded[i], 256).unwrap());
    });
    let resized: Vec<_> = decoded
        .iter()
        .map(|img| resize_short_edge_u8(img, 256).unwrap())
        .collect();
    let crop_us = per_image_us(n, |i| {
        std::hint::black_box(center_crop_u8(&resized[i], 224, 224).unwrap());
    });
    let cropped: Vec<_> = resized
        .iter()
        .map(|img| center_crop_u8(img, 224, 224).unwrap())
        .collect();
    let norm = Normalization::IMAGENET;
    let normalize_us = per_image_us(n, |i| {
        let mut t = to_f32(&cropped[i]);
        normalize_hwc(&mut t, &norm).unwrap();
        std::hint::black_box(t.data().len());
    });
    let split_us = per_image_us(n, |i| {
        let t = to_f32(&cropped[i]);
        std::hint::black_box(hwc_to_chw(&t).data().len());
    }) - per_image_us(n, |i| {
        std::hint::black_box(to_f32(&cropped[i]).data().len());
    });
    let fused_us = per_image_us(n, |i| {
        std::hint::black_box(fused_convert_normalize_split(&cropped[i], &norm).unwrap());
    });

    // DNN execution per image on the T4 (batch 64).
    let device = t4_device();
    let rn50_us = 1e6 / device.model_throughput(ModelKind::ResNet50, 64);
    let rn18_us = 1e6 / device.model_throughput(ModelKind::ResNet18, 64);

    let preproc_single = decode_us + resize_us + crop_us + normalize_us + split_us.max(0.0);
    // Preprocessing parallelizes across the vCPUs (§2's setup).
    let preproc_us = preproc_single / VCPUS as f64;

    let mut table = Table::new(
        "Figure 1 — per-image breakdown (µs); paper values in parentheses",
        &[
            "Stage",
            "Ours 1-core (µs)",
            "Ours 4-core (µs)",
            "Paper 4-core (µs)",
        ],
    );
    let rows: Vec<(&str, f64, &str)> = vec![
        ("decode", decode_us, "1668"),
        ("resize+crop", resize_us + crop_us, "201"),
        ("normalize", normalize_us, "125"),
        ("split", split_us.max(0.0), "(incl. above)"),
        ("fused conv+norm+split", fused_us, "—"),
    ];
    for (name, us, paper) in rows {
        table.row(&[
            name.to_string(),
            format!("{us:.0}"),
            format!("{:.0}", us / VCPUS as f64),
            paper.to_string(),
        ]);
    }
    table.row(&[
        "TOTAL preprocessing".into(),
        format!("{preproc_single:.0}"),
        format!("{preproc_us:.0}"),
        "~2000".into(),
    ]);
    table.row(&[
        "ResNet-50 execution".into(),
        "-".into(),
        format!("{rn50_us:.0}"),
        "222".into(),
    ]);
    table.row(&[
        "ResNet-18 execution".into(),
        "-".into(),
        format!("{rn18_us:.0}"),
        "79".into(),
    ]);
    table.print();
    table.write_csv("figure1");

    let gap50 = preproc_us / rn50_us;
    let gap18 = preproc_us / rn18_us;
    println!(
        "\nDNN execution is {gap50:.1}x faster than preprocessing for ResNet-50 (paper: 7.1x)"
    );
    println!("DNN execution is {gap18:.1}x faster than preprocessing for ResNet-18 (paper: 22.9x)");
    println!(
        "Shape check: preprocessing is the bottleneck ({}) and the gap widens for smaller DNNs ({})",
        gap50 > 1.0,
        gap18 > gap50
    );
    println!(
        "Decode dominates preprocessing: {:.0}% of CPU time (paper: ~75%)",
        decode_us / preproc_single * 100.0
    );
}
