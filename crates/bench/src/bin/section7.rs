//! §7: hardware and power accounting — the core-price fit over the g4dn
//! family and the preprocessing-vs-DNN cost/power breakdowns for ResNet-50
//! and ResNet-18 ("preprocessing costs 11× as much and draws 2.3× the
//! power").

use smol_accel::economics::{cost_breakdown, fit_core_price, g4dn_family, PAPER_PREPROC_PER_CORE};
use smol_bench::Table;

fn main() {
    let family = g4dn_family();
    let mut itable = Table::new(
        "g4dn instance family (inputs to the fit)",
        &["Instance", "vCPUs", "$/hour"],
    );
    for i in &family {
        itable.row(&[
            i.name.to_string(),
            i.vcpus.to_string(),
            format!("{:.3}", i.price_per_hour),
        ]);
    }
    itable.print();

    let fit = fit_core_price(&family);
    println!(
        "\nLinear fit: T4 ≈ ${:.3}/h (paper: $0.218), vCPU ≈ ${:.4}/h (paper: $0.0639), R² = {:.4} (paper: 0.999)",
        fit.gpu_price_per_hour, fit.core_price_per_hour, fit.r_squared
    );
    println!(
        "⇒ {:.1} vCPU cores cost as much as one T4 (paper: ≈3.4)",
        fit.gpu_price_per_hour / fit.core_price_per_hour
    );

    let mut btable = Table::new(
        "§7 — preprocessing vs DNN execution: price and power (paper-calibrated preproc rate)",
        &[
            "Model",
            "DNN tput (im/s)",
            "Cores to keep up",
            "Preproc $/h",
            "DNN $/h",
            "$ ratio",
            "Preproc W",
            "DNN W",
            "W ratio",
        ],
    );
    for (name, tput, paper_price, paper_watts) in [
        ("ResNet-50", 4513.0, 2.37, 161.0),
        ("ResNet-18", 12592.0, 6.501, 444.0),
    ] {
        let b = cost_breakdown(tput, PAPER_PREPROC_PER_CORE, &fit);
        btable.row(&[
            name.to_string(),
            format!("{tput:.0}"),
            format!("{:.1}", b.cores_needed),
            format!("{:.2} (paper {paper_price})", b.preproc_price_per_hour),
            format!("{:.3}", b.dnn_price_per_hour),
            format!("{:.1}x", b.price_ratio()),
            format!("{:.0} (paper {paper_watts})", b.preproc_watts),
            format!("{:.0}", b.dnn_watts),
            format!("{:.1}x", b.power_ratio()),
        ]);
    }
    btable.print();
    btable.write_csv("section7");
    println!("\nConclusion (matches §7): on an inference-optimized instance, feeding the");
    println!("accelerator costs an order of magnitude more than running it.");
}
