//! Figure 5: lesion study — remove (1) low-resolution data and
//! (2) preprocessing optimizations from Smol individually; both must shift
//! the Pareto frontier down/left on every dataset.

use smol_bench::imagexp::{pareto, smol_points, PreprocProfile, Toggles};
use smol_bench::{fmt_pct, fmt_tput, scaled, ModelZoo, Table, VariantSet};
use smol_data::still_catalog;

fn main() {
    let n_images = scaled(192);
    for spec in still_catalog() {
        println!("\n=== {} ===", spec.name);
        let zoo = ModelZoo::train(&spec, 42);
        let set = VariantSet::build(&spec, n_images, 13);
        let profile = PreprocProfile::measure(&set);

        let configs = [
            ("SMOL", Toggles::all()),
            (
                "-Low res",
                Toggles {
                    low_res: false,
                    preproc_opt: true,
                },
            ),
            (
                "-Preproc opt",
                Toggles {
                    low_res: true,
                    preproc_opt: false,
                },
            ),
        ];
        let mut table = Table::new(
            format!("Figure 5 — lesion study, {} (Pareto frontiers)", spec.name),
            &["Variant", "Config", "Accuracy", "Throughput (im/s)"],
        );
        let mut best: Vec<(&str, f64)> = Vec::new();
        for (name, toggles) in configs {
            let points = smol_points(&zoo, &profile, toggles);
            let frontier = pareto(&points);
            best.push((
                name,
                frontier.iter().map(|p| p.throughput).fold(0.0, f64::max),
            ));
            for p in frontier {
                table.row(&[
                    name.to_string(),
                    p.config,
                    fmt_pct(p.accuracy),
                    fmt_tput(p.throughput),
                ]);
            }
        }
        table.print();
        table.write_csv(&format!("figure5_{}", spec.name));
        let full = best[0].1;
        println!(
            "  shape: removing low-res hurts peak throughput: {} ({} vs {});",
            best[1].1 < full,
            fmt_tput(best[1].1),
            fmt_tput(full)
        );
        println!(
            "  shape: removing preproc opts hurts peak throughput: {} ({} vs {})",
            best[2].1 < full,
            fmt_tput(best[2].1),
            fmt_tput(full)
        );
    }
}
