//! figure_cascade: input-adaptive cascades end to end — per-item plan
//! routing from bitstream-derived difficulty signals vs the best uniform
//! plan on a mixed-difficulty corpus.
//!
//! The cascade's claim is input adaptivity: easy items (few coded
//! coefficients, low AC energy) take an aggressive rung (reduced decode +
//! small DNN) while hard items escalate to the full plan, with the route
//! decided *before* any decode from the entropy-scan signal. This binary
//! is the CI gate for that claim; it exits non-zero unless:
//!
//! 1. the cascade beats the best zero-loss uniform plan end to end by
//!    ≥ 1.3× (median of paired interleaved reps),
//! 2. the session-planned cascade satisfies its accuracy constraint
//!    (report accuracy ≥ floor) under measured calibration,
//! 3. the `enable_cascades` lesion falls back to a uniform plan at the
//!    same accuracy (no cascade candidates survive the toggle), and
//! 4. escalated items are bit-identical to a pure full-plan run — zero
//!    result diffs.

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{fmt_ratio, fmt_tput, scaled, Table};
use smol_codec::{signal::image_signal, EncodedImage, Format};
use smol_core::{CascadePlan, DecodeMode, InputVariant, Planner, PlannerConfig, QueryPlan};
use smol_imgproc::ImageU8;
use smol_runtime::{route_stage, wrap_images, MediaItem};
use smol_serve::{
    Calibration, Dataset, MeasuredCalibration, Query, Server, ServerConfig, Session, SessionConfig,
    SubmitOptions,
};
use std::time::Instant;

/// End-to-end gate: cascade vs best uniform plan on the mixed corpus.
const MIN_SPEEDUP: f64 = 1.3;

/// Source edge; at `DNN_INPUT` 32 the planner's reduced decode runs the
/// factor-8 scaled IDCT, so the aggressive rung skips ~98% of IDCT work.
const SRC: usize = 256;
const DNN_INPUT: u32 = 32;

/// Easy item: gentle gradient — sparse coefficients, low difficulty score.
fn smooth(seed: usize) -> ImageU8 {
    let mut img = ImageU8::zeros(SRC, SRC, 3);
    for y in 0..SRC {
        for x in 0..SRC {
            for c in 0..3 {
                img.set(x, y, c, (((x + y) / 8 + seed) % 64 + 96) as u8);
            }
        }
    }
    img
}

/// Hard item: per-pixel noise — dense coefficients, high difficulty score.
fn noisy(seed: usize) -> ImageU8 {
    let mut img = ImageU8::zeros(SRC, SRC, 3);
    let mut state = (seed as u64).wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for v in img.data_mut().iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = (state & 0xff) as u8;
    }
    img
}

/// Mostly-easy corpus with hard items spread throughout (the serving
/// regime cascades pay off in), plus difficulty labels (0 easy, 1 hard).
fn mixed_corpus(n_easy: usize, n_hard: usize) -> (Vec<ImageU8>, Vec<usize>) {
    let total = n_easy + n_hard;
    let (mut images, mut labels) = (Vec::new(), Vec::new());
    let (mut easy, mut hard) = (0, 0);
    for i in 0..total {
        if hard < n_hard && (i + 1) * n_hard >= (hard + 1) * total {
            images.push(noisy(hard + 1));
            labels.push(1);
            hard += 1;
        } else {
            images.push(smooth(easy));
            labels.push(0);
            easy += 1;
        }
    }
    (images, labels)
}

/// Deterministic result fingerprint for the bit-identity differential.
fn fingerprint(idx: usize, img: &ImageU8) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ idx as u64;
    for &b in img.data() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn fast_t4() -> VirtualDevice {
    // A fast device keeps the CPU side the bottleneck: the gate measures
    // the decode/preprocessing work routing avoids, not device time.
    VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.02)
}

fn main() {
    let n_easy = scaled(40);
    let n_hard = (n_easy / 5).max(2);
    let (images, labels) = mixed_corpus(n_easy, n_hard);
    let items: Vec<EncodedImage> = images
        .iter()
        .map(|img| EncodedImage::encode(img, Format::sjpg(85)).expect("encode"))
        .collect();
    let n = items.len();

    let planner = Planner::new(PlannerConfig {
        dnn_input: DNN_INPUT,
        batch: 16,
        ..Default::default()
    });
    let input = InputVariant::new("mixed sjpg(q=85)", Format::sjpg(85), SRC, SRC);
    let full = QueryPlan {
        dnn: ModelKind::ResNet50,
        input: input.clone(),
        preproc: planner.build_preproc(&input),
        decode: DecodeMode::Full,
        batch: 16,
        extra_stages: Vec::new(),
    };
    let stage1 = QueryPlan {
        dnn: ModelKind::ResNet18,
        decode: planner
            .reduced_decode_mode(&input)
            .expect("256px sjpg has a reduced decode at dnn_input=32"),
        ..full.clone()
    };

    // Threshold at the score gap between the easy and hard clusters.
    let mut scores: Vec<f64> = items
        .iter()
        .map(|enc| image_signal(enc).expect("sjpg signal").score())
        .collect();
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = (scores[n_easy - 1] + scores[n_easy]) / 2.0;
    let expected_stages: Vec<usize> = items
        .iter()
        .map(|enc| route_stage(&MediaItem::Image(enc.clone()), threshold))
        .collect();
    let escalated = expected_stages.iter().filter(|&&s| s == 1).count();
    assert!(
        escalated > 0 && escalated < n,
        "mixed corpus must engage both rungs (escalated {escalated}/{n})"
    );
    let cascade_opts = || SubmitOptions {
        cascade: Some(CascadePlan {
            stage1: stage1.clone(),
            threshold,
            escalation_rate: escalated as f64 / n as f64,
        }),
        ..Default::default()
    };

    // Differential: escalated items vs the pure full-plan run.
    let server = Server::with_devices(vec![fast_t4()], ServerConfig::default());
    let handle = server
        .submit_with_infer(full.clone(), items.clone(), fingerprint)
        .expect("admitted");
    let uniform_results = handle.wait().expect("resolves").take_results::<u64>();
    let handle = server
        .submit_media_opts_with_infer(
            full.clone(),
            wrap_images(&items),
            cascade_opts(),
            fingerprint,
        )
        .expect("admitted");
    let mut report = handle.wait().expect("resolves");
    assert_eq!(report.escalated_items, escalated);
    assert_eq!(report.stage_histogram, vec![n - escalated, escalated]);
    let cascade_results = report.take_results::<u64>();
    server.shutdown();
    let diffs = expected_stages
        .iter()
        .enumerate()
        .filter(|&(i, &s)| s == 1 && cascade_results[i] != uniform_results[i])
        .count();

    // Interleaved paired reps; median per-rep speedup (load-drift immune).
    let reps = 5;
    let mut per_rep = Vec::with_capacity(reps);
    let mut uni_wall = f64::INFINITY;
    let mut cas_wall = f64::INFINITY;
    for _ in 0..reps {
        let server = Server::with_devices(vec![fast_t4()], ServerConfig::default());
        let start = Instant::now();
        let handle = server
            .submit_with_infer(full.clone(), items.clone(), fingerprint)
            .expect("admitted");
        handle.wait().expect("resolves");
        let u = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let handle = server
            .submit_media_opts_with_infer(
                full.clone(),
                wrap_images(&items),
                cascade_opts(),
                fingerprint,
            )
            .expect("admitted");
        handle.wait().expect("resolves");
        let c = start.elapsed().as_secs_f64();
        server.shutdown();
        per_rep.push(u / c);
        uni_wall = uni_wall.min(u);
        cas_wall = cas_wall.min(c);
    }
    per_rep.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let speedup = per_rep[reps / 2];

    // Session-planned cascade under measured calibration: constraint
    // satisfied with cascades on; lesion parity with cascades off. The
    // big DNN detects noise only at full resolution (its stand-in for
    // fidelity loss under reduced decode), so the only zero-loss uniform
    // plan is the full one and the cascade is the only faster candidate.
    let texture = |img: &ImageU8| -> f64 {
        let (w, h, c) = (img.width(), img.height(), 3);
        let mut total = 0u64;
        let data = img.data();
        for y in 0..h {
            for x in 1..w {
                total += (data[(y * w + x) * c] as i64).abs_diff(data[(y * w + x - 1) * c] as i64);
            }
        }
        total as f64 / ((w - 1) * h) as f64
    };
    let big = move |img: &ImageU8| -> usize {
        usize::from(img.width().min(img.height()) == SRC && texture(img) > 20.0)
    };
    let small = |_img: &ImageU8| -> usize { 0 };
    let dataset = || {
        Dataset::new("mixed")
            .with_model(ModelKind::ResNet50)
            .with_model(ModelKind::ResNet18)
            .with_variant(input.clone(), items.clone())
            .with_calibration(Calibration::Measured(
                MeasuredCalibration::new(images.clone(), labels.clone())
                    .with_predictor(ModelKind::ResNet50, big)
                    .with_predictor(ModelKind::ResNet18, small),
            ))
    };
    let cfg = |enable_cascades: bool| SessionConfig {
        planner: PlannerConfig {
            dnn_input: DNN_INPUT,
            enable_cascades,
            ..Default::default()
        },
        ..Default::default()
    };
    let query = Query::new("mixed").max_accuracy_loss(0.0);

    let session = Session::new(fast_t4(), cfg(true));
    session.register(dataset()).expect("register");
    let explanation = session.explain(&query).expect("plan");
    let cascade_chosen = explanation.chosen.cascade.is_some();
    let session_report = session.run(&query).expect("run");
    let floor = session_report.accuracy_floor.expect("accuracy constraint");
    let accuracy = session_report.accuracy.expect("calibrated accuracy");
    session.shutdown();

    let lesioned = Session::new(fast_t4(), cfg(false));
    lesioned.register(dataset()).expect("register");
    let lesion_explanation = lesioned.explain(&query).expect("plan");
    let lesion_clean = lesion_explanation.chosen.cascade.is_none()
        && lesion_explanation
            .frontier
            .iter()
            .all(|c| c.cascade.is_none());
    let lesion_report = lesioned.run(&query).expect("run");
    let lesion_accuracy = lesion_report.accuracy.expect("calibrated accuracy");
    lesioned.shutdown();

    let mut table = Table::new(
        format!(
            "figure_cascade — per-item routing on {n} mixed images \
             ({n_easy} easy / {n_hard} hard, {SRC}px sjpg, batch 16)"
        ),
        &["Plan", "Wall (s)", "im/s", "Escalated", "Speedup"],
    );
    table.row(&[
        "uniform full (RN50, full decode)".to_string(),
        format!("{uni_wall:.3}"),
        fmt_tput(n as f64 / uni_wall),
        "-".to_string(),
        fmt_ratio(1.0),
    ]);
    table.row(&[
        "cascade (RN18 reduced → RN50 full)".to_string(),
        format!("{cas_wall:.3}"),
        fmt_tput(n as f64 / cas_wall),
        format!("{escalated}/{n}"),
        fmt_ratio(speedup),
    ]);
    table.print();
    table.write_csv("figure_cascade");

    println!(
        "\ndifferential: {diffs} escalated-item diffs vs pure full-plan run (gate: 0)\n\
         session: cascade chosen = {cascade_chosen}, accuracy {accuracy:.3} vs floor {floor:.3}\n\
         lesion: cascade-free frontier = {lesion_clean}, accuracy {lesion_accuracy:.3}\n\
         speedup {speedup:.2}x vs best uniform plan (gate ≥ {MIN_SPEEDUP}x)"
    );

    let mut failed = false;
    if diffs != 0 {
        eprintln!("FAIL: {diffs} escalated items differ from the uniform full-plan run");
        failed = true;
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: cascade speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        failed = true;
    }
    if !cascade_chosen {
        eprintln!("FAIL: session planner did not choose a cascade at zero accuracy loss");
        failed = true;
    }
    if accuracy < floor {
        eprintln!("FAIL: cascade session accuracy {accuracy:.3} below floor {floor:.3}");
        failed = true;
    }
    if !lesion_clean || (lesion_accuracy - accuracy).abs() > 1e-12 {
        eprintln!(
            "FAIL: lesion parity broken (cascade-free = {lesion_clean}, \
             accuracy {lesion_accuracy:.3} vs {accuracy:.3})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
