//! Figure 9: video aggregation — query execution time vs requested error
//! for BlazeIt and Smol on the four video datasets.
//!
//! Both systems run the same optimized engine (the paper's §8.4 setup);
//! they differ in Smol's two levers:
//! * a **more accurate specialized NN** (higher truth correlation → fewer
//!   target-model samples for a given error bound), and
//! * **natively-present low-resolution video** (cheaper decode for the
//!   whole-video specialized pass).
//!
//! Decode cost is measured on the generated clip (GOP-parallel, 4 workers)
//! and scaled to a nominal 30-minute video (54,000 frames). Specialized-NN
//! execution is charged at its accelerator rate (it runs on the T4 in the
//! paper); its *accuracy* comes from really training it. Target-model
//! invocations use the required-sample formula with variances measured on
//! the clip (documented in EXPERIMENTS.md).

use parking_lot::Mutex;
use smol_accel::{throughput as accel_throughput, ExecutionEnv, GpuModel, ModelKind};
use smol_analytics::{correlation, SpecializedCounter};
use smol_bench::{quick_mode, Table, VCPUS};
use smol_data::{generate_video, video_catalog, SyntheticVideo};
use smol_nn::Tier;
use smol_video::{DecodeOptions, EncodedVideo, VideoEncoder};
use std::time::Instant;

const NOMINAL_FRAMES: f64 = 54_000.0; // 30 min at 30 fps
const TARGET_FPS: f64 = 4.0; // Mask R-CNN (§1: 3–5 fps)
const Z95: f64 = 1.96;

/// Times the GOP-parallel decode of the whole clip (per-frame seconds).
fn decode_pass_cost(video: &EncodedVideo) -> f64 {
    let start = Instant::now();
    video
        .decode_parallel(VCPUS, DecodeOptions::default(), |_, frame| {
            std::hint::black_box(frame.width());
        })
        .expect("decode");
    start.elapsed().as_secs_f64() / video.n_frames() as f64
}

/// Runs the specialized NN over every decoded frame (untimed decode; the
/// accuracy matters here, the NN's *throughput* is charged at accelerator
/// rate by the caller).
fn predictions(video: &EncodedVideo, counter: &SpecializedCounter) -> Vec<f64> {
    let preds = Mutex::new(vec![0.0f64; video.n_frames()]);
    video
        .decode_parallel(VCPUS, DecodeOptions::default(), |idx, frame| {
            let p = counter.predict(frame);
            preds.lock()[idx] = p;
        })
        .expect("decode");
    preds.into_inner()
}

/// Control-variate adjusted standard deviation: σ_y · sqrt(1 − ρ²).
fn adjusted_sigma(truth: &[u32], preds: &[f64]) -> (f64, f64) {
    let t: Vec<f64> = truth.iter().map(|&v| v as f64).collect();
    let mean = t.iter().sum::<f64>() / t.len() as f64;
    let var = t.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / t.len() as f64;
    let rho = correlation(&t, preds);
    ((var * (1.0 - rho * rho)).sqrt(), rho)
}

fn main() {
    let n_frames = if quick_mode() { 300 } else { 900 };
    let errors = [0.01, 0.02, 0.03, 0.04, 0.05];
    // Accelerator rates for the specialized stages (per-frame seconds).
    let blazeit_nn_s = 1.0
        / accel_throughput(
            ModelKind::TinyResNet,
            GpuModel::T4,
            ExecutionEnv::TensorRt,
            256,
        );
    let smol_nn_s = 1.0
        / accel_throughput(
            ModelKind::TahomaSmall,
            GpuModel::T4,
            ExecutionEnv::TensorRt,
            256,
        );

    for spec in video_catalog() {
        println!("\n=== {} ===", spec.name);
        println!("generating + encoding {n_frames} frames at two resolutions...");
        let clip: SyntheticVideo = generate_video(&spec, 33, n_frames);
        let low_clip = clip.at_resolution(spec.low_res.0, spec.low_res.1);
        println!("  mean count: {:.2}", clip.mean_count());
        let encoder = VideoEncoder::default();
        let full =
            EncodedVideo::parse(encoder.encode_frames(&clip.frames, spec.fps).unwrap()).unwrap();
        let low = EncodedVideo::parse(encoder.encode_frames(&low_clip.frames, spec.fps).unwrap())
            .unwrap();

        // Train both specialized NNs on the first third of the clip.
        // BlazeIt: tiny NN at low input resolution. Smol: larger NN at a
        // resolution where the objects stay visible (§8.4: "more accurate,
        // but more expensive specialized NNs").
        let split = n_frames / 2;
        println!("training specialized NNs...");
        let blazeit_spec = SpecializedCounter::train(
            &clip.frames[..split],
            &clip.counts[..split],
            Tier::T18,
            48,
            spec.id as u64,
            10,
        );
        let smol_spec = SpecializedCounter::train(
            &low_clip.frames[..split],
            &low_clip.counts[..split],
            Tier::T50,
            96,
            spec.id as u64,
            20,
        );

        // Whole-video passes: decode cost measured, NN charged at T4 rate.
        let blazeit_pf = decode_pass_cost(&full) + blazeit_nn_s;
        let smol_pf = decode_pass_cost(&low) + smol_nn_s;
        let blazeit_preds = predictions(&full, &blazeit_spec);
        let smol_preds = predictions(&low, &smol_spec);
        let (b_sigma, b_rho) = adjusted_sigma(&clip.counts, &blazeit_preds);
        let (s_sigma, s_rho) = adjusted_sigma(&clip.counts, &smol_preds);
        println!(
            "  pass: BlazeIt {:.2} ms/frame (rho {:.2}), SMOL {:.2} ms/frame (rho {:.2})",
            blazeit_pf * 1e3,
            b_rho,
            smol_pf * 1e3,
            s_rho
        );

        let mut table = Table::new(
            format!(
                "Figure 9 — {} (query time, nominal 30-minute video)",
                spec.name
            ),
            &[
                "Error target",
                "BlazeIt samples",
                "BlazeIt time (s)",
                "SMOL samples",
                "SMOL time (s)",
                "Speedup",
            ],
        );
        let mut speedups = Vec::new();
        for &eps in &errors {
            let mut row = vec![format!("{eps:.2}")];
            let mut times = Vec::new();
            for (pf, sigma) in [(blazeit_pf, b_sigma), (smol_pf, s_sigma)] {
                let n_req = ((Z95 * sigma / eps).powi(2)).min(NOMINAL_FRAMES);
                let total = pf * NOMINAL_FRAMES + n_req / TARGET_FPS;
                times.push(total);
                row.push(format!("{:.0}", n_req));
                row.push(format!("{total:.0}"));
            }
            let speedup = times[0] / times[1];
            speedups.push(speedup);
            row.push(format!("{speedup:.1}x"));
            table.row(&row);
        }
        table.print();
        table.write_csv(&format!("figure9_{}", spec.name));
        let all_faster = speedups.iter().all(|&s| s >= 1.0);
        let max_speedup = speedups.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  shape: SMOL faster at every error target: {all_faster}; max speedup {max_speedup:.1}x (paper: up to 2.5x)"
        );
    }
}
