//! Table 6: dataset statistics — paper's datasets side by side with this
//! reproduction's synthetic analogues (scaling documented in DESIGN.md).

use smol_bench::Table;
use smol_data::still_catalog;

fn main() {
    let mut table = Table::new(
        "Table 6 — still-image dataset statistics (paper vs reproduction)",
        &[
            "Dataset",
            "Paper classes",
            "Paper train",
            "Paper test",
            "Sim classes",
            "Sim train",
            "Sim test",
            "Sim native px",
        ],
    );
    for spec in still_catalog() {
        table.row(&[
            spec.name.to_string(),
            spec.paper_classes.to_string(),
            spec.paper_train.to_string(),
            spec.paper_test.to_string(),
            spec.n_classes.to_string(),
            (spec.n_classes * spec.train_per_class).to_string(),
            (spec.n_classes * spec.test_per_class).to_string(),
            format!("{}x{}", spec.tput_native.0, spec.tput_native.1),
        ]);
    }
    table.print();
    table.write_csv("table6");
    println!("\nDifficulty ordering (bike-bird easiest → imagenet hardest) is preserved");
    println!("by construction; `cargo test --test accuracy_shapes` verifies it empirically.");
}
