//! live_stream: continuous-query serving gates — deadline-driven
//! downgrading and shedding under sustained overload.
//!
//! The workload is calibrated on this machine: a batch run over a probe
//! corpus measures the pipeline's full-fidelity frame rate, then the
//! live feed is scheduled to arrive at **2× that rate** — a sustained
//! overload no amount of queueing can absorb. A deterministic per-frame
//! CPU cost (synthetic work, as in the personality harnesses) keeps the
//! ratio stable across hosts.
//!
//! Two runs over the identical feed:
//!
//! * **paced** — the stream scheduler downgrades GOPs along the query's
//!   calibrated ladder (deblock-skip, keyframes-only) and sheds only as
//!   a last resort. Gates: p95 window staleness < 2 window durations,
//!   window coverage ≥ 90%, zero accuracy-floor violations, and every
//!   windowed mean inside its window's ground-truth count range (the
//!   calibrated error bound for a temporal subsample);
//! * **lesion** — pacing disabled: every frame executes at full
//!   fidelity. Gate: staleness grows monotonically across windows (the
//!   unbounded-queueing failure mode the scheduler exists to prevent).

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{quick_mode, Table};
use smol_data::{timed_stream, video_catalog, StreamFeed, VideoSpec};
use smol_runtime::RuntimeOptions;
use smol_serve::{Priority, Query, ServerConfig, Session, SessionConfig};
use smol_stream::{run_stream, FeedSource, PacingPolicy, StreamConfig, WindowResult};
use std::sync::Arc;
use std::time::Instant;

const GOP_LEN: usize = 6;
const EXTRA_CPU_S: f64 = 0.02; // deterministic per-frame cost
const WINDOW_S: f64 = 4.0; // stream seconds per output window

fn taipei() -> VideoSpec {
    video_catalog()
        .into_iter()
        .find(|s| s.name == "taipei")
        .expect("taipei scene")
}

fn session() -> Arc<Session> {
    let device = VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.05);
    Arc::new(Session::new(
        device,
        SessionConfig {
            server: ServerConfig {
                runtime: RuntimeOptions {
                    extra_cpu_s_per_image: EXTRA_CPU_S,
                    ..Default::default()
                },
                ..Default::default()
            },
            profile_sample: 2,
            ..Default::default()
        },
    ))
}

fn register(session: &Session, feed: &StreamFeed) {
    let variant = feed.corpus.name.clone();
    session
        .register(
            smol_serve::Dataset::stream("camera", feed)
                .with_model(ModelKind::ResNet50)
                .with_calibration(smol_serve::Calibration::Table(
                    smol_serve::AccuracyTable::new()
                        .with(ModelKind::ResNet50, &variant, 0.8200)
                        .with_keyframes(ModelKind::ResNet50, &variant, 0.8200, 0.8000)
                        .with_deblock_skip(ModelKind::ResNet50, &variant, 0.8200, 0.8100),
                )),
        )
        .expect("register");
}

/// Full-fidelity frames/second of the *streaming* pipeline at steady
/// state, measured by a probe run with pacing disabled and arrivals
/// effectively instant — the same GOP-granular query path the live runs
/// take. With arrivals instant, the spacing between window-close times
/// (staleness deltas) is pure processing time, so fixed startup costs
/// (planning, first batch formation) drop out. The probe uses a distinct
/// seed so its decoded frames can't pre-warm a cache for the live runs
/// (each run gets a fresh session anyway).
fn calibrate() -> f64 {
    let feed = timed_stream(&taipei(), 91, 24, GOP_LEN, 1000.0);
    let session = session();
    register(&session, &feed);
    let query = Query::new("camera").max_accuracy_loss(0.0);
    let probe_window_s = 1.0;
    let fpw = ((probe_window_s * feed.corpus.fps).round() as usize).max(1);
    let cfg = StreamConfig {
        window_s: probe_window_s,
        policy: PacingPolicy::disabled(),
        priority: Priority::High,
    };
    let start = Instant::now();
    let handle =
        run_stream(&session, &query, FeedSource::new(feed), cfg, |_, _| 0.0).expect("probe stream");
    let mut full_windows = Vec::new();
    while let Some(w) = handle.next_window() {
        if w.expected_frames == fpw {
            full_windows.push(w);
        }
    }
    let stats = handle.finish();
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(stats.frames_decoded, stats.frames_total);
    let (first, last) = (full_windows.first(), full_windows.last());
    if let (Some(f), Some(l)) = (first, last) {
        let dt = l.output_lag_s - f.output_lag_s;
        let frames = ((l.index - f.index) * fpw) as f64;
        if l.index > f.index && dt > 1e-3 {
            return frames / dt;
        }
    }
    // Degenerate probe (too few windows): fall back to the whole run.
    stats.frames_total as f64 / wall
}

struct RunOutcome {
    windows: Vec<WindowResult>,
    stats: smol_stream::StreamStats,
    mean_abs_err: f64,
    range_violations: usize,
}

fn run(feed: &StreamFeed, policy: PacingPolicy) -> RunOutcome {
    let session = session();
    register(&session, feed);
    let query = Query::new("camera").max_accuracy_loss(0.03);
    let cfg = StreamConfig {
        window_s: WINDOW_S,
        policy,
        priority: Priority::High,
    };
    let counts = feed.corpus.counts.clone();
    let truth = counts.clone();
    let handle = run_stream(
        &session,
        &query,
        FeedSource::new(feed.clone()),
        cfg,
        move |pos, _| counts.get(pos).copied().unwrap_or(0) as f64,
    )
    .expect("stream starts");
    let mut windows = Vec::new();
    while let Some(w) = handle.next_window() {
        windows.push(w);
    }
    let stats = handle.finish();

    // Windowed means vs ground truth: the mean of any temporal subsample
    // lies inside the window's count range, and its absolute error is
    // the fidelity actually paid.
    let fpw = ((WINDOW_S * feed.corpus.fps).round() as usize).max(1);
    let mut err_sum = 0.0;
    let mut err_n = 0usize;
    let mut range_violations = 0usize;
    for w in windows.iter().filter(|w| w.samples > 0) {
        let span = &truth[w.index * fpw..w.index * fpw + w.expected_frames];
        let lo = span.iter().copied().min().unwrap() as f64;
        let hi = span.iter().copied().max().unwrap() as f64;
        let t = span.iter().map(|&c| c as f64).sum::<f64>() / span.len() as f64;
        err_sum += (w.mean - t).abs();
        err_n += 1;
        if w.mean < lo - 1e-9 || w.mean > hi + 1e-9 {
            range_violations += 1;
        }
    }
    RunOutcome {
        windows,
        stats,
        mean_abs_err: if err_n > 0 {
            err_sum / err_n as f64
        } else {
            0.0
        },
        range_violations,
    }
}

fn p95(values: &[f64]) -> f64 {
    smol_serve::percentile(values, 0.95)
}

fn main() {
    let n_gops = if quick_mode() { 60 } else { 120 };
    let spec = taipei();

    // Calibrate, then schedule arrivals at 2× the measured rate.
    let rate = calibrate();
    let scale = (2.0 * rate / spec.fps).max(0.1);
    let feed = timed_stream(&spec, 13, n_gops, GOP_LEN, scale);
    let fpw = ((WINDOW_S * spec.fps).round() as usize).max(1);
    let window_wall_s = fpw as f64 / spec.fps / scale;
    println!(
        "calibration: {rate:.0} frames/s full fidelity → feed at {:.0} frames/s (2× overload), \
         {n_gops} GOPs, window = {fpw} frames = {:.0}ms wall\n",
        2.0 * rate,
        window_wall_s * 1e3,
    );

    let policy = PacingPolicy {
        enabled: true,
        target_lag_s: 0.1 * window_wall_s,
        drop_lag_s: 2.0 * window_wall_s,
    };
    let paced = run(&feed, policy);
    let lesion = run(&feed, PacingPolicy::disabled());

    let paced_lag_p95 = p95(&paced
        .windows
        .iter()
        .map(|w| w.output_lag_s)
        .collect::<Vec<_>>());
    let lesion_lags: Vec<f64> = lesion.windows.iter().map(|w| w.output_lag_s).collect();

    let mut table = Table::new(
        format!(
            "live_stream — {n_gops} GOPs × {GOP_LEN} frames at 2× real-time \
             ({:.0}ms windows)",
            window_wall_s * 1e3
        ),
        &[
            "Run",
            "Windows",
            "Coverage",
            "Stale p95 (ms)",
            "Downgraded",
            "Dropped",
            "Mean |err|",
        ],
    );
    for (name, o, lag) in [
        ("paced", &paced, paced_lag_p95),
        ("lesion", &lesion, p95(&lesion_lags)),
    ] {
        table.row(&[
            name.to_string(),
            format!("{}", o.stats.windows),
            format!("{:.0}%", o.stats.window_coverage * 100.0),
            format!("{:.0}", lag * 1e3),
            format!("{}", o.stats.gops_downgraded),
            format!("{}", o.stats.gops_dropped),
            format!("{:.2}", o.mean_abs_err),
        ]);
    }
    table.print();
    table.write_csv("live_stream");

    for (name, o) in [("paced", &paced), ("lesion", &lesion)] {
        println!(
            "\n{name} staleness per window (ms): {:?}",
            o.windows
                .iter()
                .map(|w| (w.output_lag_s * 1e3).round())
                .collect::<Vec<_>>()
        );
    }

    // Lesion staleness must grow monotonically (small timing jitter
    // tolerated) and end well above a window — unbounded queueing.
    let jitter = 0.15 * window_wall_s;
    let monotone = lesion_lags.windows(2).all(|p| p[1] >= p[0] - jitter);
    let lesion_grew = lesion_lags.last().copied().unwrap_or(0.0)
        > lesion_lags.first().copied().unwrap_or(0.0) + window_wall_s;

    let engaged = paced.stats.gops_downgraded > 0 || paced.stats.gops_dropped > 0;
    let stale_ok = paced_lag_p95 < 2.0 * window_wall_s;
    let coverage_ok = paced.stats.window_coverage >= 0.90;
    let floor_ok = paced.stats.floor_violations == 0 && lesion.stats.floor_violations == 0;
    let bounds_ok = paced.range_violations == 0;

    println!(
        "\ngates: pacer engaged ({} downgraded / {} dropped){} | \
         stale p95 {:.0}ms vs 2 windows {:.0}ms{} | coverage {:.0}% (target ≥ 90%){} | \
         floor violations {}{} | windowed means in ground-truth range ({} violations){} | \
         lesion staleness monotone growth{}",
        paced.stats.gops_downgraded,
        paced.stats.gops_dropped,
        if engaged { " PASS" } else { " FAIL" },
        paced_lag_p95 * 1e3,
        2.0 * window_wall_s * 1e3,
        if stale_ok { " PASS" } else { " FAIL" },
        paced.stats.window_coverage * 100.0,
        if coverage_ok { " PASS" } else { " FAIL" },
        paced.stats.floor_violations,
        if floor_ok { " PASS" } else { " FAIL" },
        paced.range_violations,
        if bounds_ok { " PASS" } else { " FAIL" },
        if monotone && lesion_grew {
            " PASS"
        } else {
            " FAIL"
        },
    );
    // Enforced in CI (bench-smoke); SMOL_NO_ENFORCE=1 opts out for
    // exploratory runs on loaded machines.
    let enforce = std::env::var("SMOL_NO_ENFORCE")
        .map(|v| v != "1")
        .unwrap_or(true);
    if enforce
        && !(engaged && stale_ok && coverage_ok && floor_ok && bounds_ok && monotone && lesion_grew)
    {
        std::process::exit(1);
    }
}
