//! Decode hot path CI gate: the fast decode path (table-driven entropy
//! decoding, lane-batched IDCT/color kernels, band parallelism) against
//! the scalar sequential reference.
//!
//! Three checks, all on the same encoded corpus:
//!
//! 1. **Bit identity** — the fast path (any worker count) must reproduce
//!    the reference decode exactly, at factor 1 and at every scaled-decode
//!    factor, for 4:4:4 and 4:2:0 chroma.
//! 2. **Speedup gate** — full decode through the fast path must beat the
//!    scalar sequential baseline by ≥ 2× wall-clock. Timing takes the
//!    minimum over repetitions (the standard noisy-host estimator: load
//!    spikes only ever add time) and workers are clamped to the host's
//!    available parallelism, so on a single-core host the gate is carried
//!    by the kernels alone.
//! 3. **Planner scenario** — with a 4:2:0 copy of the corpus registered as
//!    its own variant and *measured* decode throughput feeding the specs,
//!    a loss-tolerant constraint must choose the subsampled variant.
//!
//! Exits non-zero when any gate fails (CI wires this into bench-smoke).

use smol_accel::ModelKind;
use smol_bench::{scaled, Table};
use smol_codec::{sjpg, Chroma, DecodeOptions, EncodedImage, Format};
use smol_core::{CandidateSpec, Constraint, InputVariant, Planner};
use smol_data::{still_catalog, throughput_images};
use smol_imgproc::ops::resize::resize_bilinear_u8;
use smol_imgproc::ImageU8;
use std::time::Instant;

/// Wall-clock gate: fast path vs scalar sequential reference.
const MIN_SPEEDUP: f64 = 2.0;

/// Source edge: large enough that per-decode timing dominates overhead.
const SRC_EDGE: usize = 768;

/// Adds deterministic fine-grain detail (±16 code values) on top of the
/// upsampled corpus. Bilinear upsampling produces unrealistically smooth
/// images whose blocks are nearly DC-only; real captures at this size
/// carry per-pixel texture that the entropy coder must actually encode,
/// which is exactly the cost the hot path optimizes.
fn add_grain(img: &mut ImageU8) {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for v in img.data_mut().iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let n = ((state >> 59) as i16) - 16;
        *v = (*v as i16 + n).clamp(0, 255) as u8;
    }
}

/// Seconds per decode: minimum over `reps` timed decodes (one warm-up).
fn bench_decode(data: &[u8], opts: DecodeOptions, reps: usize) -> (f64, ImageU8) {
    let (mut img, _) = sjpg::decode_with_opts(data, opts).expect("decode");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (out, _) = sjpg::decode_with_opts(data, opts).expect("decode");
        best = best.min(t0.elapsed().as_secs_f64());
        img = out;
    }
    (best, img)
}

/// Interleaved A/B timing: alternates the two paths within each rep and
/// takes per-path minima, so slow host-load drift hits both sides equally
/// instead of biasing whichever ran second. Also asserts the two paths
/// produce identical pixels on this input.
fn bench_ab(data: &[u8], a: DecodeOptions, b: DecodeOptions, reps: usize) -> (f64, f64) {
    let (img_a, _) = sjpg::decode_with_opts(data, a).expect("decode");
    let (img_b, _) = sjpg::decode_with_opts(data, b).expect("decode");
    assert_eq!(img_a.data(), img_b.data(), "timed decodes diverged");
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        let _ = sjpg::decode_with_opts(data, a).expect("decode");
        best_a = best_a.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let _ = sjpg::decode_with_opts(data, b).expect("decode");
        best_b = best_b.min(t0.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

fn main() {
    let spec = &still_catalog()[0];
    let n = scaled(12).min(12);
    let reps = if smol_bench::quick_mode() { 3 } else { 7 };
    let natives: Vec<ImageU8> = throughput_images(spec, 11, n)
        .iter()
        .map(|img| {
            let mut up = resize_bilinear_u8(img, SRC_EDGE, SRC_EDGE).expect("upsample");
            add_grain(&mut up);
            up
        })
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);
    let fast = DecodeOptions::with_workers(workers);
    let reference = DecodeOptions::scalar_reference();

    // --- 1. Bit identity across chroma layouts and factors -------------
    for chroma in [Chroma::C444, Chroma::C420] {
        let enc = smol_codec::SjpgEncoder::with_chroma(90, chroma)
            .encode(&natives[0])
            .expect("encode");
        for factor in [1usize, 2, 4, 8] {
            let (a, sa) = sjpg::decode_scaled_opts(&enc, factor, reference).expect("reference");
            let (b, sb) = sjpg::decode_scaled_opts(&enc, factor, fast).expect("fast");
            assert_eq!(
                a.data(),
                b.data(),
                "fast path diverged: chroma {chroma:?} factor {factor}"
            );
            assert_eq!(sa.symbols_decoded, sb.symbols_decoded);
            assert_eq!(sa.idct_macs, sb.idct_macs);
        }
    }
    println!("bit identity: fast path == scalar sequential reference (444/420, factors 1/2/4/8)");

    // --- 2. Wall-clock speedup gate at factor 1 ------------------------
    // q=95: the high-fidelity ingest setting. Fine quantization keeps most
    // AC coefficients, which is exactly the regime the decode hot path is
    // for — and the regime where the bit-by-bit reference walk hurts most.
    let encoded: Vec<EncodedImage> = natives
        .iter()
        .map(|img| EncodedImage::encode(img, Format::sjpg(95)).expect("encode"))
        .collect();
    let mut slow_s = 0.0;
    let mut fast_s = 0.0;
    for enc in &encoded {
        let (s, f) = bench_ab(&enc.bytes, reference, fast, reps);
        slow_s += s;
        fast_s += f;
    }
    let speedup = slow_s / fast_s;

    let mut table = Table::new(
        "Decode hot path — scalar sequential reference vs fast path",
        &["Path", "ms/image", "Speedup"],
    );
    table.row(&[
        "scalar sequential (reference)".to_string(),
        format!("{:.2}", slow_s / encoded.len() as f64 * 1e3),
        "1.00x".to_string(),
    ]);
    table.row(&[
        format!("table-driven + SIMD + {workers} worker(s)"),
        format!("{:.2}", fast_s / encoded.len() as f64 * 1e3),
        format!("{speedup:.2}x"),
    ]);
    table.print();
    table.write_csv("decode_hotpath");

    // --- 3. Planner scenario: the 4:2:0 variant wins -------------------
    // Both specs model a DNN calibrated at full 768² input whose accuracy
    // does NOT survive reduced-resolution decoding (reduced_accuracy well
    // below the tolerance), so the planner must decide on full decodes —
    // where the subsampled variant's measured decode throughput wins under
    // a loss-tolerant constraint.
    let planner = Planner::default();
    let mk_spec = |name: &str, format: Format, accuracy: f64, tput: f64| CandidateSpec {
        dnn: ModelKind::ResNet50,
        input: InputVariant::new(name, format, SRC_EDGE, SRC_EDGE),
        accuracy,
        preproc_throughput: tput,
        reduced_accuracy: Some(accuracy - 0.05),
        cascade: None,
        routing: Vec::new(),
        video: None,
        storage: None,
    };
    // Measure real relative decode throughput of the two chroma layouts.
    let enc444 = EncodedImage::encode(&natives[0], Format::sjpg(90)).expect("encode 444");
    let enc420 = smol_codec::SjpgEncoder::with_chroma(90, Chroma::C420)
        .encode(&natives[0])
        .expect("encode 420");
    let (t444, _) = bench_decode(&enc444.bytes, fast, reps);
    let (t420, _) = bench_decode(&enc420, fast, reps);
    let specs = [
        mk_spec("full sjpg(q=90)", Format::sjpg(90), 0.7516, 1.0 / t444),
        mk_spec(
            "full sjpg420(q=90)",
            Format::sjpg420(90),
            0.7504,
            1.0 / t420,
        ),
    ];
    let chosen = planner
        .plan(&specs, &Constraint::MaxAccuracyLoss(0.005))
        .expect("constraint is feasible");
    println!(
        "\n420 decode: {:.2} ms vs 444 {:.2} ms ({:.2}x); planner chose: {}",
        t420 * 1e3,
        t444 * 1e3,
        t444 / t420,
        chosen.plan.input.name
    );

    let mut failed = false;
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: fast-path speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        failed = true;
    }
    if !chosen.plan.input.format.is_chroma_subsampled() {
        eprintln!(
            "FAIL: planner did not choose the 4:2:0 variant under a loss-tolerant constraint"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
