//! variant_store: the physical-representation store end to end — repeat
//! queries over a materialized dataset must be served from the decoded-
//! tensor cache, bit-identically and coherently.
//!
//! Three gates, all enforced (SMOL_NO_ENFORCE=1 opts out):
//!
//! 1. **Warm speedup ≥ 5×.** The same query submitted twice to one
//!    server: the second run skips every decode (the dominant CPU cost
//!    for full-resolution sjpg at a small DNN input), so its wall time
//!    must be at least 5× shorter. Cold and warm runs share each
//!    repetition (interleaved A/B) and per-mode minima are taken.
//! 2. **Bit identity.** Per-image inference callbacks hash the decoded
//!    pixels; the cold hashes, the warm hashes, and direct
//!    `decode_item` ground truth must agree exactly.
//! 3. **Coherence.** N threads submit the identical query to a fresh
//!    server concurrently; single-flight must decode each item exactly
//!    once and every query must observe identical pixel hashes.
//!
//! A fourth section demonstrates the storage-aware planner flip with
//! *measured* rates: read throughput from a verified store load,
//! transcode amortization from timing the encoder, the cached-path rate
//! derived from joint and decode-only measurements, and the live cache
//! hit rate — the planner must pick the materialized variant, and the
//! `-Storage` lesion must price the difference away.

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{fmt_ratio, fmt_tput, quick_mode, Table};
use smol_codec::{EncodedImage, Format};
use smol_core::{
    CandidateSpec, Constraint, DecodeMode, InputVariant, Planner, PlannerConfig, QueryPlan,
    StorageProfile,
};
use smol_data::{encode_variant, VariantStore};
use smol_imgproc::ImageU8;
use smol_runtime::{decode_item, measure_preproc_pipelined, RuntimeOptions};
use smol_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::time::Instant;

fn textured(w: usize, h: usize, seed: usize) -> ImageU8 {
    let mut img = ImageU8::zeros(w, h, 3);
    for y in 0..h {
        for x in 0..w {
            for c in 0..3 {
                img.set(x, y, c, ((x * 7 + y * 13 + c * 19 + seed * 23) % 256) as u8);
            }
        }
    }
    img
}

/// FNV-1a over the raw pixel buffer, eight bytes per round: the
/// bit-identity witness. Word-at-a-time keeps the witness cheap enough
/// that hashing doesn't distort the warm-pass timing it guards.
fn pixel_hash(img: &ImageU8) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut chunks = img.data().chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes(c.try_into().expect("exact chunk"));
        h = (h ^ word).wrapping_mul(0x100000001b3);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn temp_root() -> PathBuf {
    std::env::temp_dir().join(format!("smol-variant-store-bench-{}", std::process::id()))
}

fn main() {
    // Full-resolution images at a small DNN input: decode dominates the
    // CPU side, which is exactly the regime the tensor cache targets.
    // The corpus must stay large enough that fixed per-submission costs
    // (admission, batch formation, device wait) don't mask the decode
    // win on the warm pass, so quick mode trims less than `scaled`.
    let n = if quick_mode() { 24 } else { 64 };
    let (w, h) = (512usize, 384usize);
    let dnn_input = 64u32;
    let reps = if quick_mode() { 3 } else { 5 };

    let images: Vec<ImageU8> = (0..n).map(|i| textured(w, h, i)).collect();
    let encoded: Vec<EncodedImage> = images
        .iter()
        .map(|img| EncodedImage::encode(img, Format::sjpg(95)).expect("encode"))
        .collect();
    let truth: Vec<u64> = encoded
        .iter()
        .map(|e| pixel_hash(&decode_item(e, DecodeMode::Full).expect("decode")))
        .collect();

    // ---- Materialize into the variant store and read it back. ----
    let root = temp_root();
    let _ = std::fs::remove_dir_all(&root);
    let store = VariantStore::open(&root).expect("open store");
    let variant = encode_variant("512x384 sjpg(q=95)", &images, Format::sjpg(95), false)
        .expect("encode variant");
    let mat = store
        .materialize("bench", std::slice::from_ref(&variant))
        .expect("materialize");
    let read_start = Instant::now();
    let loaded = store.load("bench").expect("load");
    let read_s = read_start.elapsed().as_secs_f64();
    let read_tput = if read_s > 0.0 {
        n as f64 / read_s
    } else {
        f64::INFINITY
    };
    let store_identical = loaded[0]
        .items
        .iter()
        .zip(&encoded)
        .all(|(a, b)| a.bytes[..] == b.bytes[..] && a.fingerprint() == b.fingerprint());
    println!(
        "store: {n} objects, {} bytes written, {} deduped; verified load {} im/s; \
         round-trip bit-identical: {store_identical}",
        mat.bytes_written,
        mat.objects_deduped,
        fmt_tput(read_tput),
    );
    let encoded = loaded.into_iter().next().expect("one variant").items;

    let input = InputVariant::new("512x384 sjpg(q=95)", Format::sjpg(95), w, h);
    let planner = Planner::new(PlannerConfig {
        dnn_input,
        batch: n,
        ..Default::default()
    });
    // Full decode on purpose: the gate measures the cache eliding the
    // decode, so the cold path must actually pay it in full.
    let plan = QueryPlan {
        dnn: ModelKind::ResNet50,
        input: input.clone(),
        preproc: planner.build_preproc(&input),
        decode: DecodeMode::Full,
        batch: n,
        extra_stages: Vec::new(),
    };
    let opts = RuntimeOptions::default();
    // A very fast simulated device keeps execution negligible so wall
    // time is CPU-side: decode+preproc when cold, preproc alone when warm.
    let device = || VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.02);
    let cfg = ServerConfig {
        runtime: opts,
        tensor_cache_bytes: 256 << 20,
        ..Default::default()
    };

    // ---- Gate 1+2: cold-vs-warm speedup and bit identity. ----
    // Each repetition runs cold-then-warm on a fresh server (the cold
    // submit fills that server's cache, the warm one reuses it), and
    // per-mode minima are taken across repetitions: interleaved A/B, so
    // host-load drift hits both modes alike.
    let mut cold_wall = f64::INFINITY;
    let mut warm_wall = f64::INFINITY;
    let mut warm_report = None;
    let mut identical = true;
    let mut last_stats = None;
    for _ in 0..reps {
        let server = Server::new(device(), cfg);
        let mut run = |label: &str| {
            let start = Instant::now();
            let handle = server
                .submit_with_infer(plan.clone(), encoded.clone(), |_, img: &ImageU8| {
                    pixel_hash(img)
                })
                .expect("admitted");
            let mut report = handle.wait().expect("resolves");
            let wall = start.elapsed().as_secs_f64();
            let hashes: Vec<u64> = report
                .take_results::<u64>()
                .into_iter()
                .map(|h| h.unwrap_or_else(|| panic!("{label} item missing a result")))
                .collect();
            if hashes != truth {
                eprintln!("BIT-IDENTITY VIOLATION: {label} run diverged from decode_item");
                identical = false;
            }
            (wall, report)
        };
        let (cold, _) = run("cold");
        let (warm, report) = run("warm");
        cold_wall = cold_wall.min(cold);
        if warm < warm_wall {
            warm_wall = warm;
            warm_report = Some(report);
        }
        last_stats = Some(server.stats().tensor_cache);
        server.shutdown();
    }
    let warm_report = warm_report.expect("at least one repetition");
    let cache = last_stats.expect("at least one repetition");
    let speedup = cold_wall / warm_wall;
    let warm_served_cached =
        warm_report.cache_hits == warm_report.images && warm_report.decode_cpu_s == 0.0;

    let mut table = Table::new(
        format!("variant_store — repeat query over {n} materialized 512x384 sjpg(q=95) images"),
        &["Pass", "Wall (s)", "Throughput (im/s)", "Speedup"],
    );
    table.row(&[
        "cold (decode + preproc)".to_string(),
        format!("{cold_wall:.3}"),
        fmt_tput(n as f64 / cold_wall),
        fmt_ratio(1.0),
    ]);
    table.row(&[
        "warm (tensor cache)".to_string(),
        format!("{warm_wall:.3}"),
        fmt_tput(n as f64 / warm_wall),
        fmt_ratio(speedup),
    ]);
    table.print();
    table.write_csv("variant_store");
    println!(
        "warm report: {} / {} cache hits, decode {:.4}s; cache: {} decodes, {} hits, \
         {} misses, {} resident bytes",
        warm_report.cache_hits,
        warm_report.images,
        warm_report.decode_cpu_s,
        cache.decodes,
        cache.hits,
        cache.misses,
        cache.resident_bytes,
    );

    // ---- Gate 3: coherence under concurrent identical submissions. ----
    let writers = 4usize;
    let coherent = {
        let server = Server::new(device(), cfg);
        let hashes: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..writers)
                .map(|_| {
                    let server = &server;
                    let plan = plan.clone();
                    let items = encoded.clone();
                    scope.spawn(move || {
                        let mut report = server
                            .submit_with_infer(plan, items, |_, img: &ImageU8| pixel_hash(img))
                            .expect("admitted")
                            .wait()
                            .expect("resolves");
                        report
                            .take_results::<u64>()
                            .into_iter()
                            .map(|h| h.expect("every item carries a result"))
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let stats = server.stats().tensor_cache;
        server.shutdown();
        let all_truth = hashes.iter().all(|h| h == &truth);
        println!(
            "coherence: {writers} concurrent identical queries → {} decodes for {n} unique \
             items, all outputs ground-truth-identical: {all_truth}",
            stats.decodes,
        );
        all_truth && stats.decodes == n as u64
    };

    // ---- Planner flip with measured storage rates. ----
    // On-the-fly: decode+preproc at the measured joint rate, plus the
    // measured per-image transcode cost every query re-pays. Store: the
    // verified-load read rate, transcode already paid, and the cached
    // rate the warm pass actually achieves.
    let joint_tput = measure_preproc_pipelined(&encoded, &plan, &opts);
    let transcode_start = Instant::now();
    for img in &images {
        EncodedImage::encode(img, Format::sjpg(95)).expect("encode");
    }
    let transcode_amortized_s = transcode_start.elapsed().as_secs_f64() / n as f64;
    let cached_tput = n as f64 / warm_wall;
    let hit_rate = cache.hit_rate();
    let accuracy = 0.80;
    let on_the_fly = CandidateSpec {
        dnn: ModelKind::ResNet50,
        input: InputVariant::new("on-the-fly sjpg(q=95)", Format::sjpg(95), w, h),
        accuracy,
        preproc_throughput: joint_tput,
        reduced_accuracy: None,
        cascade: None,
        routing: Vec::new(),
        video: None,
        storage: Some(StorageProfile {
            read_throughput: f64::INFINITY,
            transcode_amortized_s,
            cached_throughput: 0.0,
            cache_hit_rate: 0.0,
        }),
    };
    let materialized = CandidateSpec {
        input: InputVariant::new("store sjpg(q=95)", Format::sjpg(95), w, h),
        storage: Some(StorageProfile {
            read_throughput: read_tput,
            transcode_amortized_s: 0.0,
            cached_throughput: cached_tput,
            cache_hit_rate: hit_rate,
        }),
        ..on_the_fly.clone()
    };
    let specs = [on_the_fly, materialized];
    let chosen = Planner::new(PlannerConfig {
        dnn_input,
        batch: n,
        ..Default::default()
    })
    .plan(&specs, &Constraint::MaxAccuracyLoss(0.0))
    .expect("feasible");
    println!(
        "\nplanner: joint {} im/s, transcode {:.2}ms/im, read {} im/s, cached {} im/s \
         (hit rate {:.0}%) → chose \"{}\" at {} im/s",
        fmt_tput(joint_tput),
        transcode_amortized_s * 1e3,
        fmt_tput(read_tput),
        fmt_tput(cached_tput),
        hit_rate * 100.0,
        chosen.plan.input.name,
        fmt_tput(chosen.est_throughput),
    );
    let flipped = chosen.plan.input.name == "store sjpg(q=95)";
    // Lesion: with storage-aware costing off, both specs must price
    // identically — the flip is attributable to the storage terms alone.
    let lesioned = Planner::new(PlannerConfig {
        dnn_input,
        batch: n,
        enable_storage_aware: false,
        ..Default::default()
    });
    let cands = lesioned.enumerate(&specs);
    let tputs = |name: &str| {
        cands
            .iter()
            .filter(|c| c.plan.input.name == name)
            .map(|c| c.preproc_throughput)
            .collect::<Vec<_>>()
    };
    let (a, b) = (tputs("on-the-fly sjpg(q=95)"), tputs("store sjpg(q=95)"));
    let lesion_parity =
        !a.is_empty() && a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| (x - y).abs() < 1e-9);
    println!("lesion (-Storage): candidate rates identical across specs: {lesion_parity}");

    let _ = std::fs::remove_dir_all(&root);

    println!(
        "\nwarm speedup {speedup:.2}x (target ≥ 5x){}",
        if speedup >= 5.0 {
            " — PASS"
        } else {
            " — BELOW TARGET"
        }
    );
    let enforce = std::env::var("SMOL_NO_ENFORCE")
        .map(|v| v != "1")
        .unwrap_or(true);
    let mut failed = false;
    let mut gate = |ok: bool, what: &str| {
        if !ok {
            eprintln!("GATE FAILED: {what}");
            failed = true;
        }
    };
    gate(store_identical, "store round-trip bit identity");
    gate(speedup >= 5.0, "warm repeat ≥ 5x cold");
    gate(
        identical,
        "cold/warm results match decode_item ground truth",
    );
    gate(
        warm_served_cached,
        "warm repeat fully cache-served (hits == images, zero decode CPU)",
    );
    gate(
        coherent,
        "concurrent submissions: one decode per item, identical outputs",
    );
    gate(flipped, "planner flips to the materialized variant");
    gate(lesion_parity, "-Storage lesion prices specs identically");
    if enforce && failed {
        std::process::exit(1);
    }
}
