//! Table 3: cost-model validation. Three regimes — balanced,
//! preprocessing-bound, DNN-bound — with *measured* pipelined throughput
//! compared against the three estimators (Smol min, BlazeIt exec-only,
//! Tahoma additive).
//!
//! The paper tunes the regimes by picking DNN/input combinations; we tune
//! the virtual device's execution rate to the same preproc:exec ratios the
//! paper reports, then really run the pipeline.

use smol_accel::{DeviceSpec, ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{default_planner, fmt_tput, Table, VariantKind, VariantSet, VCPUS};
use smol_core::{estimate_throughput, percent_error, CascadeStage, CostModelKind};
use smol_data::still_catalog;
use smol_runtime::{run_throughput, RuntimeOptions};

fn device_with_exec_rate(rate: f64) -> VirtualDevice {
    let spec = DeviceSpec {
        resnet50_batch64: rate,
        ..GpuModel::T4.spec()
    };
    VirtualDevice::with_spec(spec, ExecutionEnv::TensorRt, 1.0)
}

fn main() {
    let spec = &still_catalog()[3]; // imagenet-sim
    let n = if smol_bench::quick_mode() { 256 } else { 1024 };
    println!("encoding {n} images in thumbnail variants...");
    let set = VariantSet::build(spec, n, 11);
    let planner = default_planner();

    // Profile preprocessing throughput for q75 thumbnails (the paper's
    // full-load configuration) once.
    let (mut plan, preproc_tput) =
        set.plan_and_profile(&planner, ModelKind::ResNet50, VariantKind::ThumbQ75, VCPUS);
    plan.batch = 32;
    println!(
        "measured preprocessing throughput: {:.0} im/s",
        preproc_tput
    );

    // Regimes defined by the paper's exec:preproc ratios.
    let regimes = [
        ("Balanced", 4999.0 / 4001.0),
        ("Preproc-bound", 4999.0 / 534.0),
        ("DNN-bound", 1844.0 / 5876.0),
    ];
    let mut table = Table::new(
        "Table 3 — measured pipelined throughput vs cost-model estimates",
        &[
            "Config",
            "Preproc (im/s)",
            "Exec (im/s)",
            "Pipelined (im/s)",
            "Smol est (err)",
            "BlazeIt est (err)",
            "Tahoma est (err)",
        ],
    );
    let mut smol_errs = Vec::new();
    let mut best_count = 0usize;
    for (name, ratio) in regimes {
        let exec_rate = preproc_tput * ratio;
        let device = device_with_exec_rate(exec_rate);
        let opts = RuntimeOptions {
            producers: VCPUS,
            ..Default::default()
        };
        let report = run_throughput(set.items(VariantKind::ThumbQ75), &plan, &device, &opts)
            .expect("pipeline run");
        let measured = report.throughput;
        let stages = CascadeStage::single(device.model_throughput(ModelKind::ResNet50, 32));
        let exec = stages[0].throughput;
        let ests: Vec<(CostModelKind, f64)> = [
            CostModelKind::Smol,
            CostModelKind::ExecOnly,
            CostModelKind::Additive,
        ]
        .into_iter()
        .map(|k| (k, estimate_throughput(k, preproc_tput, &stages)))
        .collect();
        let errs: Vec<f64> = ests
            .iter()
            .map(|(_, e)| percent_error(*e, measured))
            .collect();
        smol_errs.push(errs[0]);
        if errs[0] <= errs[1] + 1e-9 && errs[0] <= errs[2] + 1e-9 {
            best_count += 1;
        }
        table.row(&[
            name.to_string(),
            fmt_tput(preproc_tput),
            fmt_tput(exec),
            fmt_tput(measured),
            format!("{} ({:.1}%)", fmt_tput(ests[0].1), errs[0]),
            format!("{} ({:.1}%)", fmt_tput(ests[1].1), errs[1]),
            format!("{} ({:.1}%)", fmt_tput(ests[2].1), errs[2]),
        ]);
    }
    table.print();
    table.write_csv("table3");
    println!("\nSmol's estimate matches or ties the best in {best_count}/3 regimes (paper: 3/3);");
    println!(
        "Smol mean error: {:.1}% (paper per-row: 1.4% / 4.1% / 7.2%)",
        smol_errs.iter().sum::<f64>() / smol_errs.len() as f64
    );
}
