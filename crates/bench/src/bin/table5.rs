//! Table 5: ResNet-50 throughput across GPU generations (K80 → RTX),
//! batch 64 — "throughput has improved by over 94×".

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{fmt_tput, Table};
use smol_runtime::measure_exec_throughput;

fn main() {
    let mut table = Table::new(
        "Table 5 — ResNet-50 throughput by GPU generation (batch 64, TensorRT)",
        &["GPU", "Release", "Paper (im/s)", "Measured (im/s)", "Error"],
    );
    let mut first = f64::NAN;
    let mut last = f64::NAN;
    for gpu in GpuModel::table5_order() {
        let spec = gpu.spec();
        let device = VirtualDevice::new(gpu, ExecutionEnv::TensorRt, 1.0);
        let n_batches = ((spec.resnet50_batch64 / 64.0).ceil() as usize).clamp(3, 80);
        let measured = measure_exec_throughput(&device, ModelKind::ResNet50, 64, n_batches);
        if gpu == GpuModel::K80 {
            first = measured;
        }
        if gpu == GpuModel::Rtx {
            last = measured;
        }
        table.row(&[
            spec.name.to_string(),
            spec.release_year.to_string(),
            fmt_tput(spec.resnet50_batch64),
            fmt_tput(measured),
            format!(
                "{:.1}%",
                (measured - spec.resnet50_batch64).abs() / spec.resnet50_batch64 * 100.0
            ),
        ]);
    }
    table.print();
    table.write_csv("table5");
    println!(
        "\nK80 → RTX improvement: measured {:.0}x (paper: 94x)",
        last / first
    );
}
