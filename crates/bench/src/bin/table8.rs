//! Table 8: throughput and cost (¢ per million images) with and without
//! Smol's optimizations at 4 / 8 / 16 vCPUs, at fixed accuracy.
//!
//! "Opt" is Smol's plan: low-resolution (161 spng) thumbnails with an
//! augmented SmolNet-50 (accuracy ≈ full-res, Table 7) and optimized
//! preprocessing. "No opt" is the naive plan: full-resolution images,
//! standard preprocessing, buffer reuse and pinned staging off.

use smol_accel::{DeviceSpec, ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{
    default_planner, fmt_tput, naive_planner, quick_mode, Table, VariantKind, VariantSet,
};
use smol_core::QueryPlan;
use smol_data::still_catalog;
use smol_runtime::{run_throughput, RuntimeOptions};

fn main() {
    let spec = &still_catalog()[3];
    let n = if quick_mode() { 192 } else { 768 };
    println!("encoding {n} images...");
    let set = VariantSet::build(spec, n, 37);
    let instances = smol_accel::economics::g4dn_family();
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(8);

    // Paper reference rows.
    let paper = [
        (4, 1927.0, 7.58, 377.0, 38.75),
        (8, 3756.0, 5.56, 634.0, 32.92),
        (16, 4548.0, 7.35, 1165.0, 28.68),
    ];

    let mut table = Table::new(
        "Table 8 — throughput and cost vs vCPUs (paper values in parens)",
        &[
            "Condition",
            "vCPUs",
            "Throughput (im/s)",
            "Cost (c/1M images)",
        ],
    );
    let mut ratios = Vec::new();
    for &(vcpus, p_opt_t, p_opt_c, p_no_t, p_no_c) in &paper {
        if vcpus > cores {
            println!("skipping {vcpus} vCPUs (machine has {cores} cores)");
            continue;
        }
        let price = instances
            .iter()
            .find(|i| i.vcpus == vcpus as u32)
            .expect("g4dn instance")
            .price_per_hour;
        // Opt: thumbnails + optimized preprocessing + all runtime opts.
        let planner = default_planner();
        let input = set.input_variant(VariantKind::ThumbPng);
        let opt_plan = QueryPlan {
            dnn: ModelKind::ResNet50,
            input: input.clone(),
            preproc: planner.build_preproc(&input),
            decode: planner.decode_mode(&input),
            batch: 32,
            extra_stages: Vec::new(),
        };
        let device = VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 1.0);
        let opt_tput = run_throughput(
            set.items(VariantKind::ThumbPng),
            &opt_plan,
            &device,
            &RuntimeOptions {
                producers: vcpus,
                ..Default::default()
            },
        )
        .unwrap()
        .throughput;
        // No opt: full-res, standard preprocessing, systems opts off.
        let nplanner = naive_planner();
        let ninput = set.input_variant(VariantKind::FullRes);
        let no_plan = QueryPlan {
            dnn: ModelKind::ResNet50,
            input: ninput.clone(),
            preproc: nplanner.build_preproc(&ninput),
            decode: nplanner.decode_mode(&ninput),
            batch: 32,
            extra_stages: Vec::new(),
        };
        // Keep the DNN from becoming the bottleneck in either condition
        // (the paper's 16-vCPU row approaches the RN-50 limit; ours is far
        // from it, so the T4 spec is fine as-is).
        let device2 = VirtualDevice::with_spec(
            DeviceSpec {
                ..GpuModel::T4.spec()
            },
            ExecutionEnv::TensorRt,
            1.0,
        );
        let no_tput = run_throughput(
            set.items(VariantKind::FullRes),
            &no_plan,
            &device2,
            &RuntimeOptions {
                producers: vcpus,
                memory_reuse: false,
                pinned: false,
                ..Default::default()
            },
        )
        .unwrap()
        .throughput;
        let opt_cost = smol_accel::economics::cents_per_million_images(opt_tput, price);
        let no_cost = smol_accel::economics::cents_per_million_images(no_tput, price);
        ratios.push(no_cost / opt_cost);
        table.row(&[
            "Opt".into(),
            vcpus.to_string(),
            format!("{} ({p_opt_t:.0})", fmt_tput(opt_tput)),
            format!("{opt_cost:.2} ({p_opt_c})"),
        ]);
        table.row(&[
            "No opt".into(),
            vcpus.to_string(),
            format!("{} ({p_no_t:.0})", fmt_tput(no_tput)),
            format!("{no_cost:.2} ({p_no_c})"),
        ]);
    }
    table.print();
    table.write_csv("table8");
    if let Some(max_ratio) = ratios
        .iter()
        .cloned()
        .fold(None::<f64>, |a, b| Some(a.map_or(b, |a| a.max(b))))
    {
        println!("\nSmol is up to {max_ratio:.1}x more cost-effective per image (paper: up to 5x)");
    }
}
