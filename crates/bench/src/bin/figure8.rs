//! Figure 8: factor analysis of the systems optimizations — the cumulative
//! counterpart of Figure 7's lesion study. Shares its implementation.

#[path = "figure7.rs"]
mod figure7;

fn main() {
    figure7::run(true);
}
