//! serve_concurrent: throughput of concurrent homogeneous queries through
//! the `smol-serve` multi-query runtime vs the same queries executed
//! back-to-back through the legacy single-query pipeline.
//!
//! The serving regime is many *small* queries (here: one device batch
//! each). The legacy engine runs each query as produce-everything →
//! execute-the-batch, so CPU preprocessing and accelerator execution
//! serialize *per query*; the server overlaps query k+1's preprocessing
//! with query k's device execution and merges same-signature items into
//! shared batches. With preprocessing and execution rates balanced (the
//! worst case for either engine alone), the overlap alone is worth up to
//! 2×; the acceptance bar is ≥ 1.4× (median of 7 paired reps) for 4
//! concurrent homogeneous queries, with a trimmed-spread stability check.
//!
//! The device is calibrated from a *measured* preprocessing rate: we
//! profile the plan's CPU side, then pick a virtual-device spec whose
//! execution rate at the plan's batch size matches it.

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{fmt_ratio, fmt_tput, quick_mode, Table};
use smol_codec::{EncodedImage, Format};
use smol_core::{InputVariant, Planner, PlannerConfig, QueryPlan};
use smol_imgproc::ImageU8;
use smol_runtime::{measure_preproc_pipelined, run_throughput, RuntimeOptions};
use smol_serve::{Server, ServerConfig};
use std::time::Instant;

fn textured(w: usize, h: usize, seed: usize) -> ImageU8 {
    let mut img = ImageU8::zeros(w, h, 3);
    for y in 0..h {
        for x in 0..w {
            for c in 0..3 {
                img.set(x, y, c, ((x * 7 + y * 13 + c * 19 + seed * 23) % 256) as u8);
            }
        }
    }
    img
}

fn main() {
    let n_queries = 4usize;
    // The workload is small by construction (one batch per query), so
    // quick mode only trims the calibration run, not the comparison —
    // shrinking the queries would let fixed overheads mask the overlap win.
    let items_per_query = 96;
    let batch = items_per_query; // one device batch per query: serving regime
    let (w, h) = (128usize, 96usize);
    let dnn_input = 64u32;

    let planner = Planner::new(PlannerConfig {
        dnn_input,
        batch,
        ..Default::default()
    });
    let input = InputVariant::new("128x96 sjpg(q=85)", Format::sjpg(85), w, h);
    let plan = QueryPlan {
        dnn: ModelKind::ResNet50,
        input: input.clone(),
        preproc: planner.build_preproc(&input),
        decode: planner.decode_mode(&input),
        batch,
        extra_stages: Vec::new(),
    };
    let opts = RuntimeOptions::default();

    let queries: Vec<Vec<EncodedImage>> = (0..n_queries)
        .map(|q| {
            (0..items_per_query)
                .map(|i| {
                    EncodedImage::encode(&textured(w, h, q * items_per_query + i), Format::sjpg(85))
                        .expect("encode")
                })
                .collect()
        })
        .collect();

    // Calibrate: preprocessing rate (measured, pipelined, this machine)
    // and a device whose execution rate at `batch` matches it.
    let calib_items = if quick_mode() { 24 } else { items_per_query };
    let preproc_rate = measure_preproc_pipelined(&queries[0][..calib_items], &plan, &opts);
    let t4_rate_at_batch = VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 1.0)
        .model_throughput(ModelKind::ResNet50, batch);
    let mut spec = GpuModel::T4.spec();
    spec.resnet50_batch64 *= preproc_rate / t4_rate_at_batch;
    println!(
        "calibration: preproc {} im/s → device exec {} im/s at batch {batch}\n",
        fmt_tput(preproc_rate),
        fmt_tput(
            VirtualDevice::with_spec(spec.clone(), ExecutionEnv::TensorRt, 1.0)
                .model_throughput(ModelKind::ResNet50, batch)
        ),
    );

    // Interleaved A/B timing (the `decode_hotpath` estimator): each rep
    // runs sequential-then-served back to back, so slow host-load drift
    // hits both modes equally instead of biasing whichever block ran
    // second — the flake mode this gate used to exhibit when all
    // sequential reps ran first. The gate statistic is the **median of
    // the per-rep paired speedups** over 7 reps: pairing cancels
    // rep-scale load, and the median ignores the occasional rep where a
    // load spike landed inside exactly one block (the residual flake
    // mode of the old per-mode-minimum estimator, which read 1.47–1.59×
    // around the old 1.5× bar). A fresh device per repetition keeps the
    // reservation timelines independent, and the served runs disable the
    // decoded-tensor cache: every image here is unique, and the gate
    // measures pipelining overlap, not cache wins.
    let reps = 7;
    let mut seq_walls = Vec::with_capacity(reps);
    let mut srv_walls = Vec::with_capacity(reps);
    let mut runs: Vec<(Vec<smol_serve::QueryReport>, smol_serve::ServerStats)> =
        Vec::with_capacity(reps);
    for _ in 0..reps {
        let seq_device = VirtualDevice::with_spec(spec.clone(), ExecutionEnv::TensorRt, 1.0);
        let seq_start = Instant::now();
        for items in &queries {
            run_throughput(items, &plan, &seq_device, &opts).expect("legacy run");
        }
        seq_walls.push(seq_start.elapsed().as_secs_f64());

        let srv_device = VirtualDevice::with_spec(spec.clone(), ExecutionEnv::TensorRt, 1.0);
        let server = Server::new(
            srv_device,
            ServerConfig {
                runtime: opts,
                max_active_queries: n_queries,
                tensor_cache_bytes: 0,
                ..Default::default()
            },
        );
        let srv_start = Instant::now();
        let handles: Vec<_> = queries
            .iter()
            .map(|items| {
                server
                    .submit(plan.clone(), items.clone())
                    .expect("admitted")
            })
            .collect();
        let reports: Vec<_> = handles
            .into_iter()
            .map(|handle| handle.wait().expect("resolves"))
            .collect();
        srv_walls.push(srv_start.elapsed().as_secs_f64());
        let stats = server.stats();
        server.shutdown();
        runs.push((reports, stats));
    }
    let per_rep: Vec<f64> = seq_walls
        .iter()
        .zip(&srv_walls)
        .map(|(s, v)| s / v)
        .collect();
    let mut ranked: Vec<usize> = (0..reps).collect();
    ranked.sort_by(|&a, &b| per_rep[a].partial_cmp(&per_rep[b]).expect("finite walls"));
    let median_rep = ranked[reps / 2];
    let speedup = per_rep[median_rep];
    // Variance check over the middle five reps (min and max discarded):
    // a wide spread there means the host was too loaded for the numbers
    // to mean anything, and the gate should fail loudly rather than
    // pass or fail by luck.
    let trimmed: Vec<f64> = ranked[1..reps - 1].iter().map(|&i| per_rep[i]).collect();
    let spread = (trimmed[trimmed.len() - 1] - trimmed[0]) / speedup;
    let seq_wall = seq_walls[median_rep];
    let srv_wall = srv_walls[median_rep];
    let (reports, stats) = runs.swap_remove(median_rep);

    let total_images = (n_queries * items_per_query) as f64;

    let mut table = Table::new(
        format!(
            "serve_concurrent — {n_queries} homogeneous queries × {items_per_query} images \
             (batch {batch}, balanced preproc/exec)"
        ),
        &["Mode", "Wall (s)", "Throughput (im/s)", "Speedup"],
    );
    table.row(&[
        "legacy sequential".to_string(),
        format!("{seq_wall:.3}"),
        fmt_tput(total_images / seq_wall),
        fmt_ratio(1.0),
    ]);
    table.row(&[
        "smol-serve concurrent".to_string(),
        format!("{srv_wall:.3}"),
        fmt_tput(total_images / srv_wall),
        fmt_ratio(speedup),
    ]);
    table.print();
    table.write_csv("serve_concurrent");

    println!("\nper-query latency through the server:");
    for r in &reports {
        println!(
            "  query {:>2}: {:>3} images in {:.3}s  p50 {:.1}ms  p95 {:.1}ms",
            r.id,
            r.images,
            r.wall_s,
            r.latency_p50_s * 1e3,
            r.latency_p95_s * 1e3
        );
    }
    println!(
        "\nserver: {} batches ({} cross-query, {} full), device occupancy {:.0}%",
        stats.batches,
        stats.cross_query_batches,
        stats.full_batches,
        stats.device_occupancy() * 100.0
    );
    println!(
        "speedup {:.2}x vs isolated-sequential (median of {} paired reps, target ≥ 1.4x; \
         trimmed spread {:.1}%, limit 35%){}",
        speedup,
        reps,
        spread * 100.0,
        if speedup >= 1.4 && spread <= 0.35 {
            " — PASS"
        } else if speedup < 1.4 {
            " — BELOW TARGET"
        } else {
            " — UNSTABLE"
        }
    );
    // The acceptance gate is enforced (CI runs this in bench-smoke);
    // SMOL_NO_ENFORCE=1 opts out for exploratory runs on loaded machines.
    // An over-wide trimmed spread also fails: a measurement that noisy
    // would pass or fail by luck, which is exactly the flake this
    // estimator exists to remove.
    let enforce = std::env::var("SMOL_NO_ENFORCE")
        .map(|v| v != "1")
        .unwrap_or(true);
    if enforce && (speedup < 1.4 || spread > 0.35) {
        std::process::exit(1);
    }
}
