//! Multi-resolution decoding end to end (§6.4, Table 4): full decode +
//! CPU resize vs the fused reduced-resolution (scaled-IDCT) decode, run
//! through the pipelined engine in the preprocessing-bound regime.
//!
//! The fused plan is the paper's signature shape — decode small, skip the
//! resize, feed the accelerator — and this binary is the CI gate for it:
//! it exits non-zero unless the fused plan (a) stays within a PSNR bound
//! of the reference path (full decode + downsample to the same geometry)
//! and (b) beats full-decode+resize end-to-end throughput by ≥ 1.3×.

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{decode_label, scaled, Table, VCPUS};
use smol_codec::{sjpg, EncodedImage, Format};
use smol_core::{DecodeMode, InputVariant, Planner, PlannerConfig, QueryPlan};
use smol_data::{still_catalog, throughput_images};
use smol_imgproc::ops::resize::{box_downsample_u8, resize_bilinear_u8};
use smol_imgproc::ImageU8;
use smol_runtime::{run_throughput, RuntimeOptions};

/// Throughput-vs-reference gate: the fused plan must win by this factor.
const MIN_SPEEDUP: f64 = 1.3;
/// Fidelity gate for the fused decode vs full-decode + box-downsample.
const MIN_PSNR_DB: f64 = 24.0;

/// DNN input edge; sources are 8× larger so the factor-8 scaled decode
/// lands exactly on the DNN input and the resize is elided.
const DNN_INPUT: u32 = 64;
const SRC_EDGE: usize = 8 * DNN_INPUT as usize;

fn psnr(a: &ImageU8, b: &ImageU8) -> f64 {
    let mse: f64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.data().len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

fn main() {
    let spec = &still_catalog()[0];
    let n = scaled(48);
    // Natural-ish sources at 512×512 (dataset renders upsampled to the
    // multi-resolution-friendly geometry).
    let natives: Vec<ImageU8> = throughput_images(spec, 7, n)
        .iter()
        .map(|img| resize_bilinear_u8(img, SRC_EDGE, SRC_EDGE).expect("upsample"))
        .collect();
    let encoded: Vec<EncodedImage> = natives
        .iter()
        .map(|img| EncodedImage::encode(img, Format::sjpg(90)).expect("encode"))
        .collect();

    let planner = Planner::new(PlannerConfig {
        dnn_input: DNN_INPUT,
        batch: 16,
        ..Default::default()
    });
    let input = InputVariant::new(
        format!("{SRC_EDGE} sjpg(q=90)"),
        Format::sjpg(90),
        SRC_EDGE,
        SRC_EDGE,
    );
    let preproc = planner.build_preproc(&input);
    let mk_plan = |decode: DecodeMode| QueryPlan {
        dnn: ModelKind::ResNet50,
        input: input.clone(),
        preproc: preproc.clone(),
        decode,
        batch: 16,
        extra_stages: Vec::new(),
    };
    let full_plan = mk_plan(DecodeMode::Full);
    // The planner must enumerate the fused mode itself (factor 8: 512/8 =
    // 64 = the DNN input, so the rewrite pass elides the resize).
    let reduced_mode = planner
        .reduced_decode_mode(&input)
        .expect("planner offers a reduced-resolution mode for this geometry");
    assert_eq!(
        reduced_mode,
        DecodeMode::reduced(8).expect("8 is a valid scaled-IDCT factor")
    );
    let reduced_plan = mk_plan(reduced_mode);

    // Fidelity: fused decode vs the reference path (full decode + box
    // downsample to the same geometry).
    let mut min_psnr = f64::INFINITY;
    let mut idct_full = 0u64;
    let mut idct_reduced = 0u64;
    for enc in encoded.iter().take(8) {
        let (full_img, fs) = sjpg::decode_with_stats(&enc.bytes).expect("full decode");
        let (small, rs) = sjpg::decode_scaled(&enc.bytes, 8).expect("scaled decode");
        let reference = box_downsample_u8(&full_img, 8).expect("reference downsample");
        min_psnr = min_psnr.min(psnr(&reference, &small));
        idct_full += fs.idct_macs;
        idct_reduced += rs.idct_macs;
    }

    // End-to-end throughput in the preprocessing-bound regime: a fast
    // device (scaled kernel times) keeps the CPU side the bottleneck.
    let opts = RuntimeOptions {
        producers: VCPUS,
        ..Default::default()
    };
    let device = || VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.02);
    let full = run_throughput(&encoded, &full_plan, &device(), &opts).expect("full run");
    let reduced = run_throughput(&encoded, &reduced_plan, &device(), &opts).expect("reduced run");
    let speedup = reduced.throughput / full.throughput;

    let mut table = Table::new(
        "Figure lowres — fused reduced-resolution decode vs full decode + resize",
        &[
            "Plan",
            "Decode",
            "im/s",
            "Speedup",
            "Decode CPU s",
            "IDCT MACs/image",
        ],
    );
    table.row(&[
        "full decode + resize".to_string(),
        decode_label(&full_plan.decode),
        format!("{:.0}", full.throughput),
        "1.00x".to_string(),
        format!("{:.2}", full.decode_cpu_s),
        format!("{}", idct_full / 8),
    ]);
    table.row(&[
        "fused reduced-res (resize elided)".to_string(),
        decode_label(&reduced_plan.decode),
        format!("{:.0}", reduced.throughput),
        format!("{speedup:.2}x"),
        format!("{:.2}", reduced.decode_cpu_s),
        format!("{}", idct_reduced / 8),
    ]);
    table.print();
    table.write_csv("figure_lowres");

    println!(
        "\nfidelity: min PSNR vs full-decode+box-downsample reference = {min_psnr:.1} dB \
         (gate ≥ {MIN_PSNR_DB} dB)"
    );
    println!(
        "IDCT work drop: {:.0}× fewer MACs; end-to-end speedup {speedup:.2}x (gate ≥ {MIN_SPEEDUP}x)",
        idct_full as f64 / idct_reduced.max(1) as f64
    );

    let mut failed = false;
    if min_psnr < MIN_PSNR_DB {
        eprintln!("FAIL: fused decode fidelity {min_psnr:.1} dB below the {MIN_PSNR_DB} dB gate");
        failed = true;
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: end-to-end speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
