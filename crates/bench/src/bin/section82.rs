//! §8.2: pipelining-efficiency and cost-model benchmarking —
//! (a) preprocessing-only vs DNN-only vs pipelined throughput at full load
//!     (paper: 5.9k / 4.2k / 3.6k im/s, ≤16% overhead vs the min model);
//! (b) average cost-model error across ResNet-50 configurations
//!     (paper: Smol 5.9% vs exec-only 217% vs additive 23%).

use smol_accel::{DeviceSpec, ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{default_planner, fmt_tput, Table, VariantKind, VariantSet, VCPUS};
use smol_core::{estimate_throughput, percent_error, CascadeStage, CostModelKind};
use smol_data::still_catalog;
use smol_runtime::{measure_exec_throughput, run_throughput, RuntimeOptions};

fn device_with_exec_rate(rate: f64) -> VirtualDevice {
    let spec = DeviceSpec {
        resnet50_batch64: rate,
        ..GpuModel::T4.spec()
    };
    VirtualDevice::with_spec(spec, ExecutionEnv::TensorRt, 1.0)
}

fn main() {
    let spec = &still_catalog()[3];
    let n = if smol_bench::quick_mode() { 256 } else { 1024 };
    println!("encoding {n} images (q75 thumbnails for the full-load test)...");
    let set = VariantSet::build(spec, n, 19);
    let planner = default_planner();

    // (a) Full-load pipelining overhead: exec tuned slightly below preproc
    // (the paper's 5.9k preproc / 4.2k exec ratio).
    let (mut plan, preproc) =
        set.plan_and_profile(&planner, ModelKind::ResNet50, VariantKind::ThumbQ75, VCPUS);
    plan.batch = 32;
    let exec_rate = preproc * 4.2 / 5.9;
    let device = device_with_exec_rate(exec_rate);
    let exec = measure_exec_throughput(&device, ModelKind::ResNet50, 32, 20);
    let fresh = device_with_exec_rate(exec_rate);
    let opts = RuntimeOptions {
        producers: VCPUS,
        ..Default::default()
    };
    let report = run_throughput(set.items(VariantKind::ThumbQ75), &plan, &fresh, &opts).unwrap();
    let pipelined = report.throughput;
    let min_pred = preproc.min(exec);
    let overhead = (1.0 - pipelined / min_pred) * 100.0;
    let mut t = Table::new(
        "§8.2(a) — full-load pipelining (paper: 5.9k / 4.2k / 3.6k im/s, 16% overhead)",
        &["Measurement", "im/s"],
    );
    t.row(&["preprocessing only".into(), fmt_tput(preproc)]);
    t.row(&["DNN execution only".into(), fmt_tput(exec)]);
    t.row(&["pipelined end-to-end".into(), fmt_tput(pipelined)]);
    t.print();
    println!("\npipelining overhead vs min(preproc, exec): {overhead:.1}% (paper: 16%)");
    let tahoma_pred = estimate_throughput(
        CostModelKind::Additive,
        preproc,
        &CascadeStage::single(exec),
    );
    println!(
        "Tahoma's additive model predicts {} — {:.0}% error (paper: 30%)",
        fmt_tput(tahoma_pred),
        percent_error(tahoma_pred, pipelined)
    );

    // (b) Average error across RN-50 configurations: four input variants ×
    // three exec regimes.
    println!("\nrunning the RN-50 configuration sweep...");
    let mut errs = [Vec::new(), Vec::new(), Vec::new()];
    for kind in VariantKind::all() {
        let (mut plan, p) = set.plan_and_profile(&planner, ModelKind::ResNet50, kind, VCPUS);
        plan.batch = 32;
        for ratio in [0.4, 1.2, 6.0] {
            let rate = p * ratio;
            let device = device_with_exec_rate(rate);
            let measured = run_throughput(set.items(kind), &plan, &device, &opts)
                .unwrap()
                .throughput;
            let stages = CascadeStage::single(device.model_throughput(ModelKind::ResNet50, 32));
            for (i, kind_cm) in [
                CostModelKind::Smol,
                CostModelKind::ExecOnly,
                CostModelKind::Additive,
            ]
            .into_iter()
            .enumerate()
            {
                let est = estimate_throughput(kind_cm, p, &stages);
                errs[i].push(percent_error(est, measured));
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut t2 = Table::new(
        "§8.2(b) — average estimation error across RN-50 configurations",
        &["Cost model", "Avg error (ours)", "Avg error (paper)"],
    );
    t2.row(&[
        "Smol (min)".into(),
        format!("{:.1}%", avg(&errs[0])),
        "5.9%".into(),
    ]);
    t2.row(&[
        "BlazeIt (exec only)".into(),
        format!("{:.1}%", avg(&errs[1])),
        "217%".into(),
    ]);
    t2.row(&[
        "Tahoma (sum)".into(),
        format!("{:.1}%", avg(&errs[2])),
        "23%".into(),
    ]);
    t2.print();
    t2.write_csv("section82");
    println!(
        "\nShape check: Smol lowest error: {}",
        avg(&errs[0]) < avg(&errs[1]) && avg(&errs[0]) < avg(&errs[2])
    );
}
