//! The video workload end to end (§6.4 applied to GOP-structured input):
//! keyframe-only + deblock-skip decoding vs full-GOP full-fidelity
//! decoding, run through the pipelined engine in the preprocessing-bound
//! regime.
//!
//! Keyframe-only selection is the video analogue of the paper's partial
//! decoding — it skips the motion-compensated P-frame path *entirely* —
//! and deblock skipping is Table 4's reduced-fidelity decoding. This
//! binary is the CI gate for the video plan path: it exits non-zero
//! unless the fast plan (a) keeps its decoded keyframes within a PSNR
//! bound of the pristine source frames (the accuracy floor), (b) beats
//! the full-decode plan by ≥ 2× in end-to-end wall time over the same
//! corpus, and (c) demonstrably performed zero motion compensation.

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{decode_label, scaled, Table, VCPUS};
use smol_core::{DecodeMode, FrameSelection, InputVariant, Planner, PlannerConfig, QueryPlan};
use smol_data::{gop_corpus, video_catalog};
use smol_imgproc::ops::resize_short_edge_u8;
use smol_imgproc::ImageU8;
use smol_runtime::{run_media_throughput, wrap_gops, RuntimeOptions};
use smol_video::DecodeOptions;

/// End-to-end corpus wall-time gate: the fast plan must win by this
/// factor.
const MIN_SPEEDUP: f64 = 2.0;
/// Accuracy floor: decoded keyframes (filter skipped) vs the pristine
/// source frames. 24 dB is well past "recognizable to a classifier" and
/// documents how much fidelity the deblock-skip path may cost.
const MIN_PSNR_DB: f64 = 24.0;

const GOP_LEN: usize = 12;

fn psnr(a: &ImageU8, b: &ImageU8) -> f64 {
    let mse: f64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.data().len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

fn main() {
    let spec = video_catalog()
        .into_iter()
        .find(|s| s.name == "taipei")
        .expect("taipei scene in the catalog");
    let n_gops = scaled(24);
    println!(
        "encoding {} GOPs x {GOP_LEN} frames of {} at {}x{} ...",
        n_gops, spec.name, spec.low_res.0, spec.low_res.1
    );
    let corpus = gop_corpus(&spec, 7, n_gops, GOP_LEN);
    println!(
        "corpus: {} frames, {:.0} KiB ({:.1}x compression)",
        corpus.n_frames(),
        corpus.size_bytes() as f64 / 1024.0,
        (corpus.n_frames() * corpus.width * corpus.height * 3) as f64 / corpus.size_bytes() as f64
    );

    // The planner must offer the fast mode itself for this input.
    let planner = Planner::new(PlannerConfig {
        dnn_input: 64,
        batch: 16,
        ..Default::default()
    });
    let input = InputVariant::new(
        corpus.name.clone(),
        corpus.format(),
        corpus.width,
        corpus.height,
    )
    .video(corpus.gop_len);
    let fast_mode = DecodeMode::Video {
        selection: FrameSelection::Keyframes,
        deblock: false,
    };
    assert!(
        planner.video_decode_modes(&input).contains(&fast_mode),
        "planner must enumerate keyframe-only + deblock-skip for GOP inputs"
    );
    let full_mode = planner.decode_mode(&input);
    assert_eq!(
        full_mode,
        DecodeMode::Video {
            selection: FrameSelection::All,
            deblock: true
        }
    );
    let mk_plan = |decode: DecodeMode| QueryPlan {
        dnn: ModelKind::ResNet50,
        input: input.clone(),
        preproc: planner.build_preproc(&input),
        decode,
        batch: 16,
        extra_stages: Vec::new(),
    };

    // Fidelity + work accounting on the first few GOPs: keyframes decoded
    // without the filter vs the pristine rendered source frames. The
    // generator is deterministic per (spec, seed), so rendering only the
    // compared prefix reproduces the corpus's exact source frames.
    const FIDELITY_GOPS: usize = 8;
    let short = corpus.width.min(corpus.height);
    let sources: Vec<ImageU8> =
        smol_data::generate_video(&spec, 7, n_gops.min(FIDELITY_GOPS) * GOP_LEN)
            .frames
            .iter()
            .map(|f| resize_short_edge_u8(f, short).expect("source resize"))
            .collect();
    let mut min_psnr = f64::INFINITY;
    let mut mc_blocks = 0u64;
    let mut untouched = 0u64;
    for gop in corpus.gops.iter().take(FIDELITY_GOPS) {
        let (frames, stats) = gop
            .decode_selected(FrameSelection::Keyframes, DecodeOptions { deblock: false })
            .expect("keyframe decode");
        mc_blocks += stats.mc_macroblocks;
        untouched += stats.frames_untouched;
        for f in &frames {
            min_psnr = min_psnr.min(psnr(&sources[gop.start_frame + f.index], &f.image));
        }
    }

    // End-to-end wall time over the same corpus, preprocessing-bound (the
    // fast virtual device keeps the CPU side the bottleneck). The full
    // plan infers every frame; the fast plan answers the same corpus from
    // its keyframes — the win compounds decode savings and temporal
    // sampling, which is exactly the end-to-end trade the planner costs.
    let items = wrap_gops(&corpus.gops);
    let opts = RuntimeOptions {
        producers: VCPUS,
        ..Default::default()
    };
    let device = || VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.02);
    let full_plan = mk_plan(full_mode);
    let fast_plan = mk_plan(fast_mode);
    let full = run_media_throughput(&items, &full_plan, &device(), &opts).expect("full run");
    let fast = run_media_throughput(&items, &fast_plan, &device(), &opts).expect("fast run");
    let speedup = full.wall_s / fast.wall_s;
    // Source-frames covered per second: both plans answer the same corpus
    // of n_gops x GOP_LEN source frames, so corpus frames over wall time
    // is the comparable end-to-end rate.
    let src_rate = |wall: f64| corpus.n_frames() as f64 / wall;

    let mut table = Table::new(
        "Figure video — keyframe-only + deblock-skip vs full-GOP decode",
        &[
            "Plan",
            "Decode",
            "Frames inferred",
            "Wall s",
            "Source frames/s",
            "Speedup",
        ],
    );
    table.row(&[
        "full-GOP, in-loop filter".to_string(),
        decode_label(&full_plan.decode),
        format!("{}", full.images),
        format!("{:.2}", full.wall_s),
        format!("{:.0}", src_rate(full.wall_s)),
        "1.00x".to_string(),
    ]);
    table.row(&[
        "keyframes, filter skipped".to_string(),
        decode_label(&fast_plan.decode),
        format!("{}", fast.images),
        format!("{:.2}", fast.wall_s),
        format!("{:.0}", src_rate(fast.wall_s)),
        format!("{speedup:.2}x"),
    ]);
    table.print();
    table.write_csv("figure_video");

    println!(
        "\nfidelity: min keyframe PSNR vs pristine source = {min_psnr:.1} dB (gate ≥ {MIN_PSNR_DB} dB)"
    );
    println!(
        "work skipped: {untouched} P-frames untouched, {mc_blocks} motion-compensated \
         macroblocks (must be 0); end-to-end speedup {speedup:.2}x (gate ≥ {MIN_SPEEDUP}x)"
    );

    let mut failed = false;
    if mc_blocks != 0 {
        eprintln!("FAIL: keyframe-only decode performed motion compensation ({mc_blocks} MBs)");
        failed = true;
    }
    if min_psnr < MIN_PSNR_DB {
        eprintln!("FAIL: keyframe fidelity {min_psnr:.1} dB below the {MIN_PSNR_DB} dB gate");
        failed = true;
    }
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: end-to-end speedup {speedup:.2}x below the {MIN_SPEEDUP}x gate");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
