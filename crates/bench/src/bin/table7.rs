//! Table 7: effect of the training procedure and input format on accuracy
//! for the two largest tiers on imagenet-sim (the paper's hardest dataset).
//!
//! The reproduced shape: naive low-res evaluation of a regularly-trained
//! model drops sharply; low-resolution-aware training recovers most of the
//! drop on lossless thumbnails; lossy thumbnails recover less, with q=75
//! worst.

use smol_bench::{fmt_pct, Table};
use smol_data::{generate_stills, still_catalog};
use smol_nn::{ClassifierConfig, InputFormat, SmolClassifier, ThumbCodec, Tier};

fn main() {
    let spec = still_catalog()
        .into_iter()
        .find(|s| s.name == "imagenet-sim")
        .unwrap();
    println!(
        "training 4 models on {} (2 tiers x 2 procedures)...",
        spec.name
    );
    let ds = generate_stills(&spec, 42);
    let thumb = |codec| InputFormat::Thumbnail {
        short: spec.acc_thumb_short,
        codec,
    };
    let formats: Vec<(String, InputFormat)> = vec![
        ("Full resol".into(), InputFormat::FullRes),
        (
            format!("{}, PNG", spec.acc_thumb_short),
            thumb(ThumbCodec::Lossless),
        ),
        (
            format!("{}, JPEG (q=95)", spec.acc_thumb_short),
            thumb(ThumbCodec::Lossy { quality: 95 }),
        ),
        (
            format!("{}, JPEG (q=75)", spec.acc_thumb_short),
            thumb(ThumbCodec::Lossy { quality: 75 }),
        ),
    ];

    let mut models = Vec::new();
    for tier in [Tier::T50, Tier::T34] {
        let reg = SmolClassifier::train(
            &ClassifierConfig::new(tier),
            &ds.train,
            &ds.train_labels,
            ds.n_classes,
        );
        let aug = SmolClassifier::train(
            &ClassifierConfig::new(tier).with_augmentation(thumb(ThumbCodec::Lossless)),
            &ds.train,
            &ds.train_labels,
            ds.n_classes,
        );
        models.push((tier, reg, aug));
    }

    // Paper reference values (Table 7, imagenet).
    let paper: [[f64; 4]; 4] = [
        [75.16, 70.92, 68.93, 64.02], // reg train, RN-50
        [57.72, 75.00, 71.94, 63.23], // low-res train, RN-50
        [72.72, 68.30, 66.92, 62.45], // reg train, RN-34
        [64.76, 72.50, 69.79, 62.45], // low-res train, RN-34
    ];

    let mut table = Table::new(
        "Table 7 — training procedure x input format (accuracy; paper in parens)",
        &[
            "Format",
            "reg train, 50",
            "low-res train, 50",
            "reg train, 34",
            "low-res train, 34",
        ],
    );
    let mut grid = vec![vec![0.0f64; 4]; 4];
    for (fi, (label, format)) in formats.iter().enumerate() {
        let mut cells = vec![label.clone()];
        for (ci, (_, reg, aug)) in models.iter().enumerate() {
            for (mi, model) in [reg, aug].into_iter().enumerate() {
                let acc = model.evaluate(&ds.test, &ds.test_labels, *format);
                grid[ci * 2 + mi][fi] = acc;
                cells.push(format!("{} ({:.2}%)", fmt_pct(acc), paper[ci * 2 + mi][fi]));
            }
        }
        table.row(&cells);
    }
    table.print();
    table.write_csv("table7");

    // Shape checks mirroring the paper's claims.
    let reg50 = &grid[0];
    let aug50 = &grid[1];
    println!("\nShape checks (SmolNet-50):");
    println!(
        "  naive low-res drops vs full-res: {} ({} -> {})",
        reg50[1] < reg50[0],
        fmt_pct(reg50[0]),
        fmt_pct(reg50[1])
    );
    println!(
        "  low-res training recovers on PNG: {} ({} -> {})",
        aug50[1] > reg50[1],
        fmt_pct(reg50[1]),
        fmt_pct(aug50[1])
    );
    println!(
        "  lossy q75 <= q95 <= PNG under low-res training: {}",
        aug50[3] <= aug50[2] + 0.02 && aug50[2] <= aug50[1] + 0.02
    );
}
