//! Figure 10 (Appendix A.1): DALI, PyTorch, and Smol across vCPU counts —
//! (a) CPU-only preprocessing (Smol's DAG optimizations off),
//! (b) optimized preprocessing, (c) end-to-end inference.

use smol_accel::{GpuModel, ModelKind, VirtualDevice};
use smol_bench::{
    default_planner, fmt_tput, naive_planner, quick_mode, Table, VariantKind, VariantSet,
};
use smol_core::QueryPlan;
use smol_data::still_catalog;
use smol_runtime::{measure_preproc_pipelined, run_throughput, Personality};

fn build_plan(opt: bool, set: &VariantSet, kind: VariantKind) -> QueryPlan {
    let planner = if opt {
        default_planner()
    } else {
        naive_planner()
    };
    let input = set.input_variant(kind);
    QueryPlan {
        dnn: ModelKind::ResNet50,
        input: input.clone(),
        preproc: planner.build_preproc(&input),
        decode: planner.decode_mode(&input),
        batch: 32,
        extra_stages: Vec::new(),
    }
}

fn main() {
    let spec = &still_catalog()[3];
    let n = if quick_mode() { 192 } else { 512 };
    println!("encoding {n} full-resolution images...");
    let set = VariantSet::build(spec, n, 29);
    let items = set.items(VariantKind::FullRes);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(8);
    let vcpu_sweep: Vec<usize> = [4usize, 8, 16, 32]
        .into_iter()
        .filter(|&v| v <= cores)
        .collect();
    println!("machine has {cores} cores; sweeping vCPUs {vcpu_sweep:?} (paper: 4..64)");

    for (panel, optimized, end_to_end) in [
        ("a) CPU preprocessing (opts off)", false, false),
        ("b) optimized preprocessing", true, false),
        ("c) end-to-end inference", true, true),
    ] {
        let mut table = Table::new(
            format!("Figure 10 {panel} — throughput (im/s) by vCPUs"),
            &["vCPUs", "SMOL", "DALI", "PyTorch"],
        );
        let mut last_row: Vec<f64> = Vec::new();
        for &vcpus in &vcpu_sweep {
            let mut cells = vec![vcpus.to_string()];
            last_row.clear();
            for personality in Personality::all() {
                let plan = build_plan(optimized, &set, VariantKind::FullRes);
                let opts = personality.options(vcpus);
                let tput = if end_to_end {
                    let device = VirtualDevice::new(GpuModel::T4, personality.env(), 1.0);
                    run_throughput(items, &plan, &device, &opts)
                        .expect("pipeline")
                        .throughput
                } else {
                    measure_preproc_pipelined(items, &plan, &opts)
                };
                last_row.push(tput);
                cells.push(fmt_tput(tput));
            }
            table.row(&cells);
        }
        table.print();
        table.write_csv(&format!(
            "figure10_{}",
            match panel.chars().next().unwrap() {
                'a' => "cpu_preproc",
                'b' => "opt_preproc",
                _ => "end_to_end",
            }
        ));
        // Shape at the largest sweep point: Smol ≥ DALI ≥ PyTorch.
        if last_row.len() == 3 {
            println!(
                "  shape at max vCPUs: SMOL >= DALI: {}, DALI >= PyTorch: {}",
                last_row[0] >= last_row[1] * 0.9,
                last_row[1] >= last_row[2] * 0.9
            );
        }
    }
}
