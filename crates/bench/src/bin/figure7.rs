//! Figures 7 and 8: lesion study and factor analysis of the *systems*
//! optimizations (§6.1) — threading, memory reuse, pinned staging, and the
//! preprocessing DAG — measured with real pipeline runs on full-resolution
//! and low-resolution (161 spng) ImageNet-sim images, ResNet-50.
//!
//! One binary produces both figures (they sweep the same axis in opposite
//! directions); `figure8` is an alias binary.

use smol_accel::{DeviceSpec, ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{
    default_planner, fmt_tput, naive_planner, quick_mode, Table, VariantKind, VariantSet, VCPUS,
};
use smol_data::still_catalog;
use smol_runtime::{run_throughput, RuntimeOptions};

fn fast_exec_device() -> VirtualDevice {
    // §8.3: configured so DNN execution is never the bottleneck.
    let spec = DeviceSpec {
        resnet50_batch64: 1e9,
        elementwise_ops_per_s: 1e14,
        ..GpuModel::T4.spec()
    };
    VirtualDevice::with_spec(spec, ExecutionEnv::TensorRt, 1.0)
}

struct Config {
    name: &'static str,
    threading: bool,
    memory_reuse: bool,
    pinned: bool,
    dag: bool,
}

pub fn run(factor_mode: bool) {
    let spec = &still_catalog()[3];
    let n = if quick_mode() { 192 } else { 768 };
    println!("encoding {n} images...");
    let set = VariantSet::build(spec, n, 21);

    let configs: Vec<Config> = if factor_mode {
        vec![
            Config {
                name: "None",
                threading: false,
                memory_reuse: false,
                pinned: false,
                dag: false,
            },
            Config {
                name: "+threading",
                threading: true,
                memory_reuse: false,
                pinned: false,
                dag: false,
            },
            Config {
                name: "+mem reuse",
                threading: true,
                memory_reuse: true,
                pinned: false,
                dag: false,
            },
            Config {
                name: "+pinned",
                threading: true,
                memory_reuse: true,
                pinned: true,
                dag: false,
            },
            Config {
                name: "+DAG",
                threading: true,
                memory_reuse: true,
                pinned: true,
                dag: true,
            },
        ]
    } else {
        vec![
            Config {
                name: "All",
                threading: true,
                memory_reuse: true,
                pinned: true,
                dag: true,
            },
            Config {
                name: "-threading",
                threading: false,
                memory_reuse: true,
                pinned: true,
                dag: true,
            },
            Config {
                name: "-mem reuse",
                threading: true,
                memory_reuse: false,
                pinned: true,
                dag: true,
            },
            Config {
                name: "-pinned",
                threading: true,
                memory_reuse: true,
                pinned: false,
                dag: true,
            },
            Config {
                name: "-DAG",
                threading: true,
                memory_reuse: true,
                pinned: true,
                dag: false,
            },
        ]
    };
    let figure = if factor_mode {
        "Figure 8 (factor analysis)"
    } else {
        "Figure 7 (lesion study)"
    };

    for (panel, kind) in [
        ("a) Full resolution", VariantKind::FullRes),
        ("b) Low resolution (161 spng)", VariantKind::ThumbPng),
    ] {
        let mut table = Table::new(
            format!("{figure} — systems optimizations, {panel}"),
            &["Config", "Throughput (im/s)", "vs all-on"],
        );
        let mut results = Vec::new();
        // Baseline with everything on, for the ratio column.
        let all_on = {
            let planner = default_planner();
            let (mut plan, _) = set.plan_and_profile(&planner, ModelKind::ResNet50, kind, VCPUS);
            plan.batch = 32;
            run_throughput(
                set.items(kind),
                &plan,
                &fast_exec_device(),
                &RuntimeOptions {
                    producers: VCPUS,
                    ..Default::default()
                },
            )
            .unwrap()
            .throughput
        };
        for cfg in &configs {
            let planner = if cfg.dag {
                default_planner()
            } else {
                naive_planner()
            };
            let input = set.input_variant(kind);
            let plan = smol_core::QueryPlan {
                dnn: ModelKind::ResNet50,
                input: input.clone(),
                preproc: planner.build_preproc(&input),
                decode: planner.decode_mode(&input),
                batch: 32,
                extra_stages: Vec::new(),
            };
            let opts = RuntimeOptions {
                producers: VCPUS,
                threading: cfg.threading,
                memory_reuse: cfg.memory_reuse,
                pinned: cfg.pinned,
                ..Default::default()
            };
            let report =
                run_throughput(set.items(kind), &plan, &fast_exec_device(), &opts).unwrap();
            results.push((cfg.name, report.throughput));
            table.row(&[
                cfg.name.to_string(),
                fmt_tput(report.throughput),
                format!("{:.2}x", report.throughput / all_on),
            ]);
        }
        table.print();
        let csv_tag = if factor_mode { "figure8" } else { "figure7" };
        table.write_csv(&format!(
            "{csv_tag}_{}",
            if kind == VariantKind::FullRes {
                "fullres"
            } else {
                "lowres"
            }
        ));
        if factor_mode {
            let monotone = results.windows(2).all(|w| w[1].1 >= w[0].1 * 0.9);
            println!("  shape: throughput non-decreasing as factors add: {monotone}");
        } else {
            let all = results[0].1;
            for (name, tput) in &results[1..] {
                println!(
                    "  lesion {name}: {} ({:.0}% of all-on)",
                    fmt_tput(*tput),
                    tput / all * 100.0
                );
            }
        }
    }
}

#[allow(dead_code)]
fn main() {
    run(false);
}
