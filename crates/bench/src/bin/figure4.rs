//! Figure 4: accuracy vs throughput for the naive baseline, Tahoma, and
//! Smol on the four image datasets (Pareto frontiers), plus the headline
//! speedups at fixed accuracy (paper: up to 5.9× vs ResNet-18, 2.2× vs
//! ResNet-50).

use smol_bench::imagexp::{
    naive_points, pareto, smol_points, speedup_at_fixed_accuracy, tahoma_points, PreprocProfile,
    Toggles,
};
use smol_bench::{fmt_pct, fmt_ratio, fmt_tput, quick_mode, scaled, ModelZoo, Table, VariantSet};
use smol_data::still_catalog;

fn main() {
    let n_images = scaled(192);
    let mut global_best_rn18 = 0.0f64;
    let mut global_best_rn50 = 0.0f64;
    for spec in still_catalog() {
        println!("\n=== {} ===", spec.name);
        println!("training model zoo (3 tiers x 2 procedures)...");
        let zoo = ModelZoo::train(&spec, 42);
        println!("encoding + profiling {n_images} throughput-track images...");
        let set = VariantSet::build(&spec, n_images, 13);
        let profile = PreprocProfile::measure(&set);

        let naive = naive_points(&zoo, &profile);
        let tahoma = tahoma_points(&zoo, &profile, quick_mode(), 77);
        let smol = smol_points(&zoo, &profile, Toggles::all());

        let mut table = Table::new(
            format!("Figure 4 — {} (all points)", spec.name),
            &[
                "System",
                "Config",
                "Accuracy",
                "Throughput (im/s)",
                "Pareto",
            ],
        );
        for (points, frontier) in [
            (&naive, pareto(&naive)),
            (&tahoma, pareto(&tahoma)),
            (&smol, pareto(&smol)),
        ] {
            for p in points.iter() {
                let on_frontier = frontier
                    .iter()
                    .any(|f| f.config == p.config && (f.throughput - p.throughput).abs() < 1e-9);
                table.row(&[
                    p.system.to_string(),
                    p.config.clone(),
                    fmt_pct(p.accuracy),
                    fmt_tput(p.throughput),
                    if on_frontier { "*".into() } else { "".into() },
                ]);
            }
        }
        table.print();
        table.write_csv(&format!("figure4_{}", spec.name));

        let speedups = speedup_at_fixed_accuracy(&smol, &naive);
        for (config, base, best, ratio) in &speedups {
            println!(
                "  speedup at {config} accuracy: {} -> {} = {}",
                fmt_tput(*base),
                fmt_tput(*best),
                fmt_ratio(*ratio)
            );
            if config.contains("18") {
                global_best_rn18 = global_best_rn18.max(*ratio);
            }
            if config.contains("50") {
                global_best_rn50 = global_best_rn50.max(*ratio);
            }
        }
        // Shape checks for this dataset.
        let naive_best_tput = naive.iter().map(|p| p.throughput).fold(0.0f64, f64::max);
        let smol_best_tput = smol.iter().map(|p| p.throughput).fold(0.0f64, f64::max);
        println!(
            "  shape: Smol extends the frontier rightward: {} ({} vs {})",
            smol_best_tput > naive_best_tput,
            fmt_tput(smol_best_tput),
            fmt_tput(naive_best_tput)
        );
    }
    println!(
        "\nHeadline: max speedup at ResNet-18-fixed accuracy: {} (paper: up to 5.9x)",
        fmt_ratio(global_best_rn18)
    );
    println!(
        "Headline: max speedup at ResNet-50-fixed accuracy: {} (paper: up to 2.2x)",
        fmt_ratio(global_best_rn50)
    );
}
