//! Table 1: ResNet-50 throughput on the T4 under three execution
//! environments (Keras / PyTorch / TensorRT), each at its optimal batch.
//!
//! Measured by timing back-to-back batches on the virtual device (whose
//! service rates are calibrated to the paper's anchors); the point of the
//! table is the ~17× software gap between Keras and TensorRT.

use smol_accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{fmt_tput, Table};
use smol_runtime::measure_exec_throughput;

fn main() {
    let paper = [243.0, 424.0, 4513.0];
    let mut table = Table::new(
        "Table 1 — ResNet-50 throughput on the T4 by execution environment",
        &[
            "Environment",
            "Batch",
            "Paper (im/s)",
            "Measured (im/s)",
            "Error",
        ],
    );
    let mut keras = 0.0;
    let mut trt = 0.0;
    for (env, paper_tput) in ExecutionEnv::all().into_iter().zip(paper) {
        let device = VirtualDevice::new(GpuModel::T4, env, 1.0);
        let batch = env.table1_batch();
        // Enough batches for ≥1 s of simulated time per environment.
        let n_batches = ((paper_tput * 1.2 / batch as f64).ceil() as usize).clamp(4, 100);
        let measured = measure_exec_throughput(&device, ModelKind::ResNet50, batch, n_batches);
        if env == ExecutionEnv::Keras {
            keras = measured;
        }
        if env == ExecutionEnv::TensorRt {
            trt = measured;
        }
        table.row(&[
            env.name().to_string(),
            batch.to_string(),
            fmt_tput(paper_tput),
            fmt_tput(measured),
            format!("{:.1}%", (measured - paper_tput).abs() / paper_tput * 100.0),
        ]);
    }
    table.print();
    table.write_csv("table1");
    println!(
        "\nTensorRT / Keras ratio: measured {:.1}x (paper: {:.1}x — \"over a 17x improvement\")",
        trt / keras,
        4513.0 / 243.0
    );
}
