//! Table 2: throughput and top-1 accuracy across ResNet depths — the
//! accuracy/throughput trade-off that motivates cost-based model selection.
//!
//! Throughput comes from the calibrated virtual device; accuracy comes from
//! the empirical track: SmolNet capacity tiers trained from scratch on
//! imagenet-sim (paper accuracies shown for reference).

use smol_accel::ModelKind;
use smol_bench::{fmt_pct, fmt_tput, t4_device, tier_model, Table};
use smol_data::still_catalog;
use smol_nn::{ClassifierConfig, InputFormat, SmolClassifier, Tier};
use smol_runtime::measure_exec_throughput;

fn main() {
    let spec = still_catalog()
        .into_iter()
        .find(|s| s.name == "imagenet-sim")
        .expect("catalog has imagenet-sim");
    println!(
        "training SmolNet ladder on {} (this takes ~1 min)...",
        spec.name
    );
    let ds = smol_data::generate_stills(&spec, 42);

    let mut table = Table::new(
        "Table 2 — throughput and top-1 accuracy by model depth",
        &[
            "Model (ours)",
            "Stand-in for",
            "Paper tput",
            "Measured tput",
            "Paper acc (ImageNet)",
            "Measured acc (imagenet-sim)",
        ],
    );
    let mut rows: Vec<(f64, f64)> = Vec::new();
    for tier in Tier::ladder() {
        let model: ModelKind = tier_model(tier);
        let mspec = model.spec();
        let device = t4_device();
        let n_batches = ((mspec.t4_tensorrt_throughput / 64.0).ceil() as usize).clamp(4, 100);
        let tput = measure_exec_throughput(&device, model, 64, n_batches);
        let clf = SmolClassifier::train(
            &ClassifierConfig::new(tier),
            &ds.train,
            &ds.train_labels,
            ds.n_classes,
        );
        let acc = clf.evaluate(&ds.test, &ds.test_labels, InputFormat::FullRes);
        rows.push((tput, acc));
        table.row(&[
            tier.name().to_string(),
            mspec.name.to_string(),
            fmt_tput(mspec.t4_tensorrt_throughput),
            fmt_tput(tput),
            format!("{:.2}%", mspec.paper_top1_accuracy.unwrap_or(f64::NAN)),
            fmt_pct(acc),
        ]);
    }
    table.print();
    table.write_csv("table2");

    let monotone_tput = rows.windows(2).all(|w| w[0].0 > w[1].0);
    let acc_gain = rows.last().unwrap().1 - rows.first().unwrap().1;
    println!(
        "\nShape check: throughput strictly decreases with depth: {monotone_tput}; \
         accuracy gain T18→T50: {:+.1} pts (paper: +6.1 pts)",
        acc_gain * 100.0
    );
}
