//! Table 4: popular visual formats and their low-fidelity decode features,
//! with the column showing which of this repository's codecs models each.

use smol_bench::Table;
use smol_codec::registry::{format_table, LowFidelityFeature, MediaType};

fn feature_name(f: &LowFidelityFeature) -> &'static str {
    match f {
        LowFidelityFeature::PartialDecoding => "partial decoding",
        LowFidelityFeature::EarlyStopping => "early stopping",
        LowFidelityFeature::ReducedFidelityDecoding => "reduced-fidelity decoding",
        LowFidelityFeature::MultiResolutionDecoding => "multi-resolution decoding",
    }
}

fn media_name(m: &MediaType) -> &'static str {
    match m {
        MediaType::Image => "Image",
        MediaType::Video => "Video",
        MediaType::ImageAndVideo => "Image/Video",
    }
}

fn main() {
    let mut table = Table::new(
        "Table 4 — visual formats and their low-fidelity features",
        &["Format", "Type", "Low-fidelity features", "Modeled by"],
    );
    for entry in format_table() {
        let features: Vec<&str> = entry.features.iter().map(feature_name).collect();
        table.row(&[
            entry.name.to_string(),
            media_name(&entry.media).to_string(),
            features.join(", "),
            entry.modeled_by.unwrap_or("—").to_string(),
        ]);
    }
    table.print();
    table.write_csv("table4");
}
