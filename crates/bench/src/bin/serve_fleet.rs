//! serve_fleet: fleet-scale serving gates — device sharding, work
//! stealing, and load-adaptive degradation.
//!
//! Three phases over the same calibrated workload:
//!
//! * **A — single device.** The baseline: 4 concurrent ResNet-50 queries
//!   through one lane. Records wall time and the worst per-query p95.
//! * **B — two-device fleet.** The identical workload over two lanes.
//!   The workload is calibrated *execution-bound* (device exec at 1/3 of
//!   the measured preprocessing rate), so adding a lane should nearly
//!   double aggregate throughput: the gate is ≥ 1.8×.
//! * **C — 2× overload with degradation.** 8 queries against the same
//!   2-lane fleet with admission capped at 4: the blocked submitters put
//!   the server under pressure, and each query carries a calibrated
//!   degradation ladder (ResNet-34 → ResNet-18) plus a deadline. The
//!   gates: at least one degradation fires, no report's accuracy lands
//!   below its floor, and the worst p95 stays under 2× the single-device
//!   baseline p95.
//!
//! Calibration mirrors `serve_concurrent`: the plan's CPU side is
//! profiled on this machine, then the virtual-device spec is scaled so
//! its ResNet-50 rate at the serving batch is a fixed fraction of it.

use smol_accel::{DeviceSpec, ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
use smol_bench::{fmt_ratio, fmt_tput, quick_mode, Table};
use smol_codec::{EncodedImage, Format};
use smol_core::{InputVariant, Planner, PlannerConfig, QueryPlan};
use smol_imgproc::ImageU8;
use smol_runtime::{measure_preproc_pipelined, RuntimeOptions};
use smol_serve::{DegradeStep, QueryReport, Server, ServerConfig, ServerStats, SubmitOptions};
use std::time::{Duration, Instant};

fn textured(w: usize, h: usize, seed: usize) -> ImageU8 {
    let mut img = ImageU8::zeros(w, h, 3);
    for y in 0..h {
        for x in 0..w {
            for c in 0..3 {
                img.set(x, y, c, ((x * 7 + y * 13 + c * 19 + seed * 23) % 256) as u8);
            }
        }
    }
    img
}

fn plan_for(planner: &Planner, input: &InputVariant, dnn: ModelKind, batch: usize) -> QueryPlan {
    QueryPlan {
        dnn,
        input: input.clone(),
        preproc: planner.build_preproc(input),
        decode: planner.decode_mode(input),
        batch,
        extra_stages: Vec::new(),
    }
}

/// One timed repetition: submit every query concurrently, wait for all,
/// return (wall, reports, stats). `max_active` below the query count
/// makes the surplus submitters block in admission (phase C's pressure).
fn serve_round(
    spec: &DeviceSpec,
    n_devices: usize,
    max_active: usize,
    plan: &QueryPlan,
    queries: &[Vec<EncodedImage>],
    opts_for: &dyn Fn(usize) -> SubmitOptions,
    runtime: &RuntimeOptions,
) -> (f64, Vec<QueryReport>, ServerStats) {
    let devices: Vec<_> = (0..n_devices)
        .map(|_| VirtualDevice::with_spec(spec.clone(), ExecutionEnv::TensorRt, 1.0))
        .collect();
    let server = Server::with_devices(
        devices,
        ServerConfig {
            runtime: *runtime,
            max_active_queries: max_active,
            ..Default::default()
        },
    );
    let start = Instant::now();
    let reports: Vec<QueryReport> = std::thread::scope(|scope| {
        let joins: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(i, items)| {
                let server = &server;
                let plan = plan.clone();
                let opts = opts_for(i);
                let items = items.clone();
                scope.spawn(move || {
                    server
                        .submit_opts(plan, items, opts)
                        .expect("admitted")
                        .wait()
                        .expect("resolves")
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("tenant"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();
    (wall, reports, stats)
}

fn worst_p95(reports: &[QueryReport]) -> f64 {
    reports.iter().fold(0.0f64, |m, r| m.max(r.latency_p95_s))
}

fn main() {
    let items_per_query = 96usize;
    let batch = 16usize; // six device batches per query: fine-grained
                         // sharding so lanes can balance and steal
    let n_base = 4usize; // phases A and B
    let n_overload = 2 * n_base; // phase C: 2× overload
    let (w, h) = (128usize, 96usize);
    let dnn_input = 64u32;

    let planner = Planner::new(PlannerConfig {
        dnn_input,
        batch,
        ..Default::default()
    });
    let input = InputVariant::new("128x96 sjpg(q=85)", Format::sjpg(85), w, h);
    let plan = plan_for(&planner, &input, ModelKind::ResNet50, batch);
    // One consumer per lane: the virtual device serializes execution
    // anyway, and a single consumer keeps queue depth an honest load
    // signal for least-loaded dispatch and stealing.
    let runtime = RuntimeOptions {
        consumers: 1,
        ..Default::default()
    };

    let queries: Vec<Vec<EncodedImage>> = (0..n_overload)
        .map(|q| {
            (0..items_per_query)
                .map(|i| {
                    EncodedImage::encode(&textured(w, h, q * items_per_query + i), Format::sjpg(85))
                        .expect("encode")
                })
                .collect()
        })
        .collect();

    // Calibrate execution-bound: device ResNet-50 rate at `batch` is 1/3
    // of the measured preprocessing rate, so the device — not the shared
    // producer pool — is the bottleneck and a second lane can pay off.
    let calib_items = if quick_mode() { 24 } else { items_per_query };
    let preproc_rate = measure_preproc_pipelined(&queries[0][..calib_items], &plan, &runtime);
    let t4_rate_at_batch = VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 1.0)
        .model_throughput(ModelKind::ResNet50, batch);
    let mut spec = GpuModel::T4.spec();
    spec.resnet50_batch64 *= (preproc_rate / 3.0) / t4_rate_at_batch;
    let probe = VirtualDevice::with_spec(spec.clone(), ExecutionEnv::TensorRt, 1.0);
    println!(
        "calibration: preproc {} im/s → per-device exec {} im/s at batch {batch} (exec-bound)\n",
        fmt_tput(preproc_rate),
        fmt_tput(probe.model_throughput(ModelKind::ResNet50, batch)),
    );

    // The phase-C ladder: cheaper calibrated rungs over the *same* input
    // variant (ImageNet-style top-1 accuracies), all above the floor.
    let accuracy_rn50 = 0.7434;
    let floor = 0.66;
    let ladder = vec![
        DegradeStep {
            plan: plan_for(&planner, &input, ModelKind::ResNet34, batch),
            accuracy: 0.7190,
            est_throughput: probe.model_throughput(ModelKind::ResNet34, batch),
        },
        DegradeStep {
            plan: plan_for(&planner, &input, ModelKind::ResNet18, batch),
            accuracy: 0.6820,
            est_throughput: probe.model_throughput(ModelKind::ResNet18, batch),
        },
    ];

    let reps = if quick_mode() { 2 } else { 3 };
    let plain = |_: usize| SubmitOptions::default();

    // Phase A: single device, base load.
    let mut a: Option<(f64, Vec<QueryReport>, ServerStats)> = None;
    for _ in 0..reps {
        let round = serve_round(
            &spec,
            1,
            n_base,
            &plan,
            &queries[..n_base],
            &plain,
            &runtime,
        );
        if a.as_ref().is_none_or(|best| round.0 < best.0) {
            a = Some(round);
        }
    }
    let (wall_1, reports_1, _) = a.expect("phase A ran");
    let p95_1 = worst_p95(&reports_1);

    // Phase B: two-device fleet, identical load.
    let mut b: Option<(f64, Vec<QueryReport>, ServerStats)> = None;
    for _ in 0..reps {
        let round = serve_round(
            &spec,
            2,
            n_base,
            &plan,
            &queries[..n_base],
            &plain,
            &runtime,
        );
        if b.as_ref().is_none_or(|best| round.0 < best.0) {
            b = Some(round);
        }
    }
    let (wall_2, _, stats_2) = b.expect("phase B ran");
    let speedup = wall_1 / wall_2;

    // Phase C: 2× overload on the fleet. Admission capped at n_base puts
    // the surplus tenants in the wait queue (pressure), and a deadline
    // scaled off the single-device wall keeps the projection honest.
    let deadline = Duration::from_secs_f64((2.0 * wall_1).max(0.5));
    let slo = |_: usize| SubmitOptions {
        deadline: Some(deadline),
        ladder: ladder.clone(),
        accuracy: Some(accuracy_rn50),
        accuracy_floor: Some(floor),
        ..Default::default()
    };
    let mut c: Option<(f64, Vec<QueryReport>, ServerStats)> = None;
    for _ in 0..reps {
        let round = serve_round(&spec, 2, n_base, &plan, &queries, &slo, &runtime);
        if c.as_ref().is_none_or(|best| round.0 < best.0) {
            c = Some(round);
        }
    }
    let (wall_c, reports_c, stats_c) = c.expect("phase C ran");
    let p95_c = worst_p95(&reports_c);
    let degraded_queries = reports_c.iter().filter(|r| r.degraded_steps > 0).count();
    let floor_violations = reports_c
        .iter()
        .filter(|r| matches!((r.accuracy, r.accuracy_floor), (Some(acc), Some(fl)) if acc < fl))
        .count();
    let deadlines_met = reports_c
        .iter()
        .filter(|r| r.deadline_missed == Some(false))
        .count();

    let total_base = (n_base * items_per_query) as f64;
    let total_over = (n_overload * items_per_query) as f64;
    let mut table = Table::new(
        format!(
            "serve_fleet — {n_base} queries × {items_per_query} images (batch {batch}, \
             exec-bound); overload = {n_overload} queries"
        ),
        &[
            "Phase",
            "Wall (s)",
            "Throughput (im/s)",
            "Worst p95 (ms)",
            "Speedup",
        ],
    );
    table.row(&[
        "A: 1 device".to_string(),
        format!("{wall_1:.3}"),
        fmt_tput(total_base / wall_1),
        format!("{:.1}", p95_1 * 1e3),
        fmt_ratio(1.0),
    ]);
    table.row(&[
        "B: 2-device fleet".to_string(),
        format!("{wall_2:.3}"),
        fmt_tput(total_base / wall_2),
        "—".to_string(),
        fmt_ratio(speedup),
    ]);
    table.row(&[
        "C: 2× overload + degrade".to_string(),
        format!("{wall_c:.3}"),
        fmt_tput(total_over / wall_c),
        format!("{:.1}", p95_c * 1e3),
        "—".to_string(),
    ]);
    table.print();
    table.write_csv("serve_fleet");

    println!(
        "\nfleet (phase B): {} batches, {} stolen; per-lane batches {:?}",
        stats_2.batches,
        stats_2.steals,
        stats_2
            .devices
            .iter()
            .map(|d| d.batches)
            .collect::<Vec<_>>(),
    );
    println!(
        "overload (phase C): {} degradations across {degraded_queries} queries, \
         {deadlines_met}/{n_overload} deadlines met, {floor_violations} floor violations",
        stats_c.degradations,
    );

    let scale_ok = speedup >= 1.8;
    let p95_ok = p95_c < 2.0 * p95_1;
    let degrade_ok = stats_c.degradations > 0;
    let floor_ok = floor_violations == 0;
    println!(
        "\ngates: 1→2 device speedup {:.2}x (target ≥ 1.8x){} | overload p95 {:.1}ms vs \
         2×baseline {:.1}ms{} | degradations {}{} | floor violations {}{}",
        speedup,
        if scale_ok { " PASS" } else { " FAIL" },
        p95_c * 1e3,
        2.0 * p95_1 * 1e3,
        if p95_ok { " PASS" } else { " FAIL" },
        stats_c.degradations,
        if degrade_ok { " PASS" } else { " FAIL" },
        floor_violations,
        if floor_ok { " PASS" } else { " FAIL" },
    );
    // Enforced in CI (bench-smoke); SMOL_NO_ENFORCE=1 opts out for
    // exploratory runs on loaded machines.
    let enforce = std::env::var("SMOL_NO_ENFORCE")
        .map(|v| v != "1")
        .unwrap_or(true);
    if enforce && !(scale_ok && p95_ok && degrade_ok && floor_ok) {
        std::process::exit(1);
    }
}
