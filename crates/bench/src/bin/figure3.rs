//! Figure 3 / Algorithm 1: partial decoding in action — macroblock-based
//! ROI decoding and raster-order early stopping, with work counters proving
//! the skipped work is real.

use smol_bench::{scaled, Table};
use smol_codec::{sjpg, spng, SjpgEncoder};
use smol_data::{still_catalog, throughput_images};
use smol_imgproc::Rect;
use std::time::Instant;

fn main() {
    let spec = &still_catalog()[3];
    let n = scaled(48);
    let natives = throughput_images(spec, 3, n);
    let enc95 = SjpgEncoder::new(95);
    let encoded: Vec<_> = natives.iter().map(|i| enc95.encode(i).unwrap()).collect();
    let (w, h) = (natives[0].width(), natives[0].height());
    // The central-crop ROI for a 224-input DNN: pre-image of the crop
    // under resize-short-edge-256 (Algorithm 1's geometry).
    let crop = ((224.0 * h as f64 / 256.0).round()) as usize;
    let roi = Rect::centered(w, h, crop, crop);
    println!(
        "image {w}x{h}, central ROI {}x{} at ({}, {})",
        roi.w, roi.h, roi.x, roi.y
    );

    // Full decode.
    let t0 = Instant::now();
    let mut full_stats = sjpg::DecodeStats::default();
    for e in &encoded {
        let (_, s) = sjpg::decode_with_stats(e).unwrap();
        full_stats.symbols_decoded += s.symbols_decoded;
        full_stats.blocks_idct += s.blocks_idct;
        full_stats.pixels_written += s.pixels_written;
    }
    let full_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;

    // ROI decode.
    let t0 = Instant::now();
    let mut roi_stats = sjpg::DecodeStats::default();
    for e in &encoded {
        let (_, _, s) = sjpg::decode_roi(e, roi).unwrap();
        roi_stats.symbols_decoded += s.symbols_decoded;
        roi_stats.blocks_idct += s.blocks_idct;
        roi_stats.pixels_written += s.pixels_written;
        roi_stats.rows_skipped += s.rows_skipped;
    }
    let roi_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;

    // Early stopping (top ROI rows only, the raster-order variant).
    let t0 = Instant::now();
    let mut early_stats = sjpg::DecodeStats::default();
    for e in &encoded {
        let (_, s) = sjpg::decode_rows(e, roi.y_end()).unwrap();
        early_stats.symbols_decoded += s.symbols_decoded;
        early_stats.blocks_idct += s.blocks_idct;
        early_stats.rows_skipped += s.rows_skipped;
    }
    let early_us = t0.elapsed().as_secs_f64() * 1e6 / n as f64;

    let mut table = Table::new(
        "Figure 3 — partial decoding modes (sjpg, per-image averages)",
        &[
            "Mode",
            "µs/image",
            "Speedup",
            "Huffman symbols",
            "IDCT blocks",
            "MCU rows skipped",
        ],
    );
    let rows = [
        ("full decode", full_us, &full_stats),
        ("ROI decode (macroblock)", roi_us, &roi_stats),
        ("early stop (raster)", early_us, &early_stats),
    ];
    for (name, us, stats) in rows {
        table.row(&[
            name.to_string(),
            format!("{us:.0}"),
            format!("{:.2}x", full_us / us),
            (stats.symbols_decoded / n as u64).to_string(),
            (stats.blocks_idct / n as u64).to_string(),
            (stats.rows_skipped / n as u64).to_string(),
        ]);
    }
    table.print();
    table.write_csv("figure3");

    // spng: sequential stream, early stopping only (Table 4's distinction).
    let png = spng::encode(&natives[0]).unwrap();
    let t0 = Instant::now();
    let _ = spng::decode(&png).unwrap();
    let png_full_us = t0.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    let (_, consumed) = spng::decode_rows(&png, roi.y_end()).unwrap();
    let png_early_us = t0.elapsed().as_secs_f64() * 1e6;
    println!(
        "\nspng early stop after row {}: {:.2}x faster, consumed {:.0}% of the stream",
        roi.y_end(),
        png_full_us / png_early_us,
        consumed * 100.0
    );
    println!(
        "ROI decode skips {:.0}% of IDCT work and {:.0}% of entropy decoding — the",
        (1.0 - roi_stats.blocks_idct as f64 / full_stats.blocks_idct as f64) * 100.0,
        (1.0 - roi_stats.symbols_decoded as f64 / full_stats.symbols_decoded as f64) * 100.0
    );
    println!("speedup comes from work not done, not from a model.");
}
