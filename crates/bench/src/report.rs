//! Report writers: aligned markdown tables on stdout plus CSV files under
//! `results/` so EXPERIMENTS.md can reference raw numbers.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple column-aligned table printer.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Prints the table as aligned markdown.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let _ = writeln!(out, "\n## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                s.push_str(&format!(" {cell:w$} |"));
            }
            s
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
    }

    /// Writes the table as CSV under `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.csv"));
        let mut content = String::new();
        content.push_str(&self.headers.join(","));
        content.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            content.push_str(&escaped.join(","));
            content.push('\n');
        }
        if let Err(e) = fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("\n[csv written to {}]", path.display());
        }
    }
}

/// Results directory (workspace `results/`, overridable via SMOL_RESULTS).
pub fn results_dir() -> PathBuf {
    std::env::var_os("SMOL_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats a throughput (im/s) with thousands separators.
pub fn fmt_tput(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.0}", v)
    } else if v >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

/// Formats an accuracy in percent.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Formats a ratio like "5.9x".
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(&["only-one".into()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_tput(4513.2), "4513");
        assert_eq!(fmt_tput(42.32), "42.3");
        assert_eq!(fmt_tput(3.456), "3.46");
        assert_eq!(fmt_pct(0.7434), "74.34%");
        assert_eq!(fmt_ratio(5.91), "5.9x");
    }
}
