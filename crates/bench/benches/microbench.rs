//! Criterion microbenches for the performance-critical kernels: codec
//! decode paths (full / ROI / early-stop), preprocessing operators (fused
//! vs unfused), the DAG optimizer, and Huffman coding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use smol_codec::{sjpg, spng, SjpgEncoder};
use smol_data::{still_catalog, throughput_images};
use smol_imgproc::dag::{DagOptimizer, PreprocPlan};
use smol_imgproc::ops::fused::fused_convert_normalize_split;
use smol_imgproc::ops::layout::{hwc_to_chw, to_f32};
use smol_imgproc::ops::normalize::{normalize_chw, Normalization};
use smol_imgproc::ops::{center_crop_u8, resize_short_edge_u8};
use smol_imgproc::Rect;

fn test_image() -> smol_imgproc::ImageU8 {
    let spec = &still_catalog()[3];
    throughput_images(spec, 1, 1).pop().expect("one image")
}

fn bench_codecs(c: &mut Criterion) {
    let img = test_image();
    let pixels = (img.width() * img.height()) as u64;
    let jpg = SjpgEncoder::new(85).encode(&img).unwrap();
    let png = spng::encode(&img).unwrap();
    let roi = Rect::centered(img.width(), img.height(), 224, 224);

    let mut g = c.benchmark_group("codec_decode");
    g.throughput(Throughput::Elements(pixels));
    g.bench_function("sjpg_full", |b| {
        b.iter(|| sjpg::decode(std::hint::black_box(&jpg)).unwrap())
    });
    g.bench_function("sjpg_roi_224", |b| {
        b.iter(|| sjpg::decode_roi(std::hint::black_box(&jpg), roi).unwrap())
    });
    g.bench_function("sjpg_early_stop_64_rows", |b| {
        b.iter(|| sjpg::decode_rows(std::hint::black_box(&jpg), 64).unwrap())
    });
    g.bench_function("spng_full", |b| {
        b.iter(|| spng::decode(std::hint::black_box(&png)).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("codec_encode");
    g.throughput(Throughput::Elements(pixels));
    g.bench_function("sjpg_q85", |b| {
        b.iter(|| {
            SjpgEncoder::new(85)
                .encode(std::hint::black_box(&img))
                .unwrap()
        })
    });
    g.bench_function("spng", |b| {
        b.iter(|| spng::encode(std::hint::black_box(&img)).unwrap())
    });
    g.finish();
}

fn bench_preproc(c: &mut Criterion) {
    let img = test_image();
    let resized = resize_short_edge_u8(&img, 256).unwrap();
    let cropped = center_crop_u8(&resized, 224, 224).unwrap();
    let norm = Normalization::IMAGENET;

    let mut g = c.benchmark_group("preproc_ops");
    g.throughput(Throughput::Elements((224 * 224 * 3) as u64));
    g.bench_function("resize_short_edge_256", |b| {
        b.iter(|| resize_short_edge_u8(std::hint::black_box(&img), 256).unwrap())
    });
    g.bench_function("unfused_convert_normalize_split", |b| {
        b.iter_batched(
            || cropped.clone(),
            |img| {
                let t = to_f32(&img);
                let mut chw = hwc_to_chw(&t);
                normalize_chw(&mut chw, &norm).unwrap();
                chw
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("fused_convert_normalize_split", |b| {
        b.iter(|| fused_convert_normalize_split(std::hint::black_box(&cropped), &norm).unwrap())
    });
    g.finish();
}

fn bench_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_optimizer");
    let plan = PreprocPlan::standard(256, 224, 224);
    g.bench_function("optimize_standard_plan", |b| {
        b.iter(|| DagOptimizer::default().optimize(std::hint::black_box(&plan), 640, 480))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_codecs, bench_preproc, bench_planner
}
criterion_main!(benches);
