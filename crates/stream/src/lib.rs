//! # smol-stream
//!
//! Live-stream serving: continuous video queries over unbounded sources,
//! with deadline-driven downgrading and frame dropping.
//!
//! Batch serving hands the [`smol_serve::Server`] every GOP at once and
//! lets latency float; a *live* source produces GOPs at wall-clock rate,
//! and a decoder that falls behind must pay **fidelity** — cheaper plans,
//! ultimately shed GOPs — never unbounded queueing. This crate closes
//! that loop:
//!
//! * [`StreamSource`] — pull-based timed GOP sources ([`FeedSource`]
//!   adapts a [`smol_data::StreamFeed`]);
//! * [`run_stream`] — the pacing scheduler: a driver thread releases
//!   GOPs at their arrival times, measures how far behind arrival the
//!   oldest in-flight GOP is, and maps that lag through a
//!   [`smol_core::PacingPolicy`] onto a rung of the query's calibrated
//!   [`StreamLadder`] (deblock-skip, strided
//!   and keyframe-only selections — whatever the planner's frontier
//!   orders next) or onto dropping the GOP outright. Every rung sits at
//!   or above the constraint's accuracy floor, so floor violations are
//!   zero by construction;
//! * [`StreamHandle`] — windowed results: per-frame values (e.g. object
//!   counts) roll up into tumbling stream-time windows
//!   ([`smol_analytics::WindowRollup`]), each closing once its GOPs have
//!   resolved or been shed, with per-window drop/downgrade/staleness
//!   accounting ([`WindowResult`]) and stream-level [`StreamStats`].
//!
//! Frame-level loss also folds into the server's aggregate counters
//! ([`smol_serve::ServerStats::dropped_frames`] /
//! [`ServerStats::downgraded_frames`](smol_serve::ServerStats::downgraded_frames))
//! via [`smol_serve::Server::record_frame_loss`].

use crossbeam::channel;
use smol_analytics::WindowRollup;
use smol_core::{DecodeMode, FrameSelection};
// The policy types live in `smol_core` (pure, unit-testable); re-export
// them so stream users need only this crate.
pub use smol_core::{PaceDecision, PacingPolicy};
use smol_data::StreamFeed;
use smol_imgproc::ImageU8;
use smol_runtime::MediaItem;
use smol_serve::{
    percentile, Priority, Query, QueryHandle, Session, SessionError, StreamLadder, SubmitOptions,
};
use smol_video::EncodedGop;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The per-frame inference callback: `(global frame position, decoded
/// frame) -> sample value`, shared with the driver thread.
type CountFn = Arc<dyn Fn(usize, &ImageU8) -> f64 + Send + Sync>;

/// One GOP released by a [`StreamSource`]: the encoded item, its frame
/// position in the stream, and its wall-clock arrival offset.
#[derive(Debug, Clone)]
pub struct StreamGop {
    pub gop: EncodedGop,
    /// Stream position of the GOP's first frame.
    pub start_frame: usize,
    /// Wall-clock arrival offset from stream start (the driver sleeps
    /// until this before the GOP exists, and lag is measured against it).
    pub arrival: Duration,
}

/// A pull-based timed GOP source. `next_gop` returns GOPs in arrival
/// order; the pacing driver sleeps out each arrival offset, so sources
/// are pure schedules — no clocks of their own.
pub trait StreamSource {
    /// The next GOP, or `None` when the stream ends (a finite clip; live
    /// cameras simply never return `None` until stopped).
    fn next_gop(&mut self) -> Option<StreamGop>;
    /// Source frame rate (stream time).
    fn fps(&self) -> f64;
    /// Stream-seconds per wall-second (1.0 = real time; > 1 compresses).
    fn time_scale(&self) -> f64;
}

/// Adapts a [`StreamFeed`] (corpus + arrival schedule) into a
/// [`StreamSource`].
#[derive(Debug, Clone)]
pub struct FeedSource {
    feed: StreamFeed,
    next: usize,
}

impl FeedSource {
    pub fn new(feed: StreamFeed) -> Self {
        FeedSource { feed, next: 0 }
    }
}

impl From<StreamFeed> for FeedSource {
    fn from(feed: StreamFeed) -> Self {
        FeedSource::new(feed)
    }
}

impl StreamSource for FeedSource {
    fn next_gop(&mut self) -> Option<StreamGop> {
        let gop = self.feed.corpus.gops.get(self.next)?.clone();
        let arrival = self.feed.arrivals[self.next];
        self.next += 1;
        Some(StreamGop {
            start_frame: gop.start_frame,
            gop,
            arrival,
        })
    }

    fn fps(&self) -> f64 {
        self.feed.corpus.fps
    }

    fn time_scale(&self) -> f64 {
        self.feed.time_scale
    }
}

/// Configuration of one continuous query.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Output window length in *stream* seconds (windows tumble; frames
    /// land by stream position, so `time_scale` never changes which
    /// window a frame belongs to).
    pub window_s: f64,
    /// The lag → rung/drop policy ([`PacingPolicy::disabled`] is the
    /// lesion: never downgrade, never drop, lag grows without bound).
    pub policy: PacingPolicy,
    /// Admission priority of the per-GOP queries.
    pub priority: Priority,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window_s: 1.0,
            policy: PacingPolicy::default(),
            priority: Priority::Normal,
        }
    }
}

/// One closed stream-time window's results and accounting.
#[derive(Debug, Clone)]
pub struct WindowResult {
    /// Window position in the stream (0 = first).
    pub index: usize,
    /// Stream-time span the window covers, in seconds.
    pub start_s: f64,
    pub end_s: f64,
    /// Mean per-frame value (e.g. object count) over the window's
    /// executed frames; 0.0 when nothing executed.
    pub mean: f64,
    /// Executed frames that contributed to `mean`.
    pub samples: usize,
    /// Frames the source actually produced in this window.
    pub expected_frames: usize,
    /// Executed outputs attributed to this window.
    pub frames_decoded: usize,
    /// Executed outputs that ran on a rung below the base plan.
    pub frames_downgraded: usize,
    /// Frames of GOPs the pacer shed that fall in this window.
    pub frames_dropped: usize,
    /// Fraction of `expected_frames` covered by a GOP that produced at
    /// least one output (a keyframe-only downgrade still *covers* its
    /// GOP; only shed GOPs lose coverage).
    pub coverage: f64,
    /// Wall seconds between the window's stream end and the moment it
    /// closed — the staleness of this result.
    pub output_lag_s: f64,
}

/// Whole-stream accounting, returned by [`StreamHandle::finish`].
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    pub gops_arrived: usize,
    pub gops_submitted: usize,
    /// Submitted on a rung below the base plan.
    pub gops_downgraded: usize,
    /// Shed by the pacer (or refused by admission) without submission.
    pub gops_dropped: usize,
    /// Frames across all arrived GOPs.
    pub frames_total: usize,
    /// Executed outputs across all resolved GOPs.
    pub frames_decoded: usize,
    /// Executed outputs that ran on a rung below the base plan.
    pub frames_downgraded: usize,
    /// Frames of shed GOPs, plus failed/skipped outputs of resolved ones.
    pub frames_dropped: usize,
    /// Windows emitted.
    pub windows: usize,
    /// Mean per-window coverage.
    pub window_coverage: f64,
    /// Per-GOP arrival → resolution wall lag percentiles.
    pub lag_p50_s: f64,
    pub lag_p95_s: f64,
    /// 95th-percentile window staleness ([`WindowResult::output_lag_s`]).
    pub output_lag_p95_s: f64,
    /// Resolved queries whose reported accuracy fell below the floor —
    /// zero by construction (every ladder rung is at or above it).
    pub floor_violations: usize,
    /// Deepest ladder rung any GOP ran on (0 = never downgraded).
    pub max_rung: usize,
}

/// A running continuous query: windowed results as they close, a stop
/// switch, and final stats. Dropping the handle stops the stream and
/// joins the driver.
pub struct StreamHandle {
    rx: channel::Receiver<WindowResult>,
    join: Option<std::thread::JoinHandle<StreamStats>>,
    stop: Arc<AtomicBool>,
}

impl StreamHandle {
    /// Blocks for the next closed window; `None` once the stream ended
    /// and every window has been taken.
    pub fn next_window(&self) -> Option<WindowResult> {
        self.rx.recv().ok()
    }

    /// Bounded wait for the next window: `None` at the timeout — the
    /// stream may well still be running (an unbounded source never
    /// "completes"; this is the poll loop's building block).
    pub fn next_window_deadline(&self, timeout: Duration) -> Option<WindowResult> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking: the next window if one has already closed.
    pub fn try_next(&self) -> Option<WindowResult> {
        self.rx.try_recv().ok()
    }

    /// Asks the driver to stop after the GOP it is currently handling;
    /// in-flight work is abandoned (its frames count as dropped).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Waits for the stream to end (call [`StreamHandle::stop`] first
    /// for unbounded sources) and returns the final stats. Windows not
    /// yet taken from the handle are discarded — drain with
    /// [`StreamHandle::next_window`] first if you want them.
    pub fn finish(mut self) -> StreamStats {
        let join = self.join.take().expect("finish consumes the only join");
        join.join().expect("stream driver panicked")
    }
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = join.join();
        }
    }
}

/// Starts a continuous query: derives the per-GOP serving ladder from
/// the query's constraint ([`Session::stream_ladder`]), then spawns a
/// driver thread that releases `source`'s GOPs at their arrival times,
/// paces them through `cfg.policy`, and rolls per-frame values of
/// `count` (called as `count(stream_frame_position, &decoded_frame)`)
/// into tumbling windows.
///
/// Planning errors surface synchronously; everything after is reported
/// through the returned [`StreamHandle`].
pub fn run_stream<S, F>(
    session: &Arc<Session>,
    query: &Query,
    source: S,
    cfg: StreamConfig,
    count: F,
) -> Result<StreamHandle, SessionError>
where
    S: StreamSource + Send + 'static,
    F: Fn(usize, &ImageU8) -> f64 + Send + Sync + 'static,
{
    let ladder = session.stream_ladder(query)?;
    let session = Arc::clone(session);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    // Effectively unbounded for any realistic run: one slot per window,
    // and the driver stops producing once asked to stop.
    let (tx, rx) = channel::bounded(1 << 16);
    let count: CountFn = Arc::new(count);
    let join = std::thread::Builder::new()
        .name("smol-stream".into())
        .spawn(move || drive(session, ladder, source, cfg, count, tx, stop2))
        .expect("spawn stream driver");
    Ok(StreamHandle {
        rx,
        join: Some(join),
        stop,
    })
}

// ---------------------------------------------------------------------------
// Driver internals
// ---------------------------------------------------------------------------

/// One submitted, unresolved GOP.
struct Pending {
    handle: QueryHandle,
    arrival: Duration,
    start_frame: usize,
    n_frames: usize,
    rung: usize,
}

/// Per-window live accounting (drained when the window closes).
#[derive(Default)]
struct WinAcct {
    /// Submitted GOPs overlapping this window and not yet resolved.
    outstanding: usize,
    /// Frames covered by GOPs that produced at least one output.
    covered: usize,
    decoded: usize,
    downgraded: usize,
    dropped: usize,
}

/// The window spans a GOP's frames fall into: `(window index, frames)`.
fn window_spans(start: usize, n: usize, fpw: usize) -> Vec<(usize, usize)> {
    let end = start + n;
    let mut out = Vec::new();
    let mut pos = start;
    while pos < end {
        let w = pos / fpw;
        let wend = ((w + 1) * fpw).min(end);
        out.push((w, wend - pos));
        pos = wend;
    }
    out
}

struct Driver {
    session: Arc<Session>,
    ladder: StreamLadder,
    cfg: StreamConfig,
    count: CountFn,
    tx: channel::Sender<WindowResult>,
    stop: Arc<AtomicBool>,
    start: Instant,
    fps: f64,
    scale: f64,
    /// Frames per window.
    fpw: usize,
    rollup: WindowRollup,
    accts: BTreeMap<usize, WinAcct>,
    pending: Vec<Pending>,
    stats: StreamStats,
    lags: Vec<f64>,
    output_lags: Vec<f64>,
    coverage_sum: f64,
    /// One past the highest frame position that has arrived.
    arrived_frames: usize,
    source_done: bool,
}

fn drive<S: StreamSource>(
    session: Arc<Session>,
    ladder: StreamLadder,
    mut source: S,
    cfg: StreamConfig,
    count: CountFn,
    tx: channel::Sender<WindowResult>,
    stop: Arc<AtomicBool>,
) -> StreamStats {
    let fps = source.fps().max(1e-6);
    let scale = source.time_scale().max(1e-9);
    let fpw = ((cfg.window_s * fps).round() as usize).max(1);
    let mut d = Driver {
        session,
        ladder,
        cfg,
        count,
        tx,
        stop,
        start: Instant::now(),
        fps,
        scale,
        fpw,
        rollup: WindowRollup::new(fpw),
        accts: BTreeMap::new(),
        pending: Vec::new(),
        stats: StreamStats::default(),
        lags: Vec::new(),
        output_lags: Vec::new(),
        coverage_sum: 0.0,
        arrived_frames: 0,
        source_done: false,
    };
    d.run(&mut source);
    d.finalize()
}

impl Driver {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn run<S: StreamSource>(&mut self, source: &mut S) {
        while !self.stopped() {
            let Some(sg) = source.next_gop() else {
                self.source_done = true;
                break;
            };
            // Pace wall clock to the GOP's arrival, reaping completions
            // and closing windows while waiting.
            loop {
                let now = self.start.elapsed();
                if now >= sg.arrival || self.stopped() {
                    break;
                }
                self.reap();
                self.close_ready();
                std::thread::sleep((sg.arrival - now).min(Duration::from_millis(2)));
            }
            if self.stopped() {
                break;
            }
            let n = sg.gop.n_frames();
            self.stats.gops_arrived += 1;
            self.stats.frames_total += n;
            self.arrived_frames = self.arrived_frames.max(sg.start_frame + n);
            self.reap();
            self.pace(sg);
            self.close_ready();
        }
        // Drain: the source ended (or we were stopped) — wait out the
        // in-flight GOPs, bounded so a wedged server can't hang us.
        let deadline = Instant::now() + Duration::from_secs(60);
        while !self.pending.is_empty() && Instant::now() < deadline && !self.stopped() {
            self.reap();
            self.close_ready();
            std::thread::sleep(Duration::from_millis(1));
        }
        self.reap();
        // Whatever is still unresolved (stopped mid-flight) is lost to
        // the stream: account its frames as dropped and release its
        // windows so they can close.
        let abandoned: Vec<Pending> = self.pending.drain(..).collect();
        for p in abandoned {
            self.stats.frames_dropped += p.n_frames;
            self.session
                .server()
                .record_frame_loss(p.n_frames as u64, 0);
            for (w, span) in window_spans(p.start_frame, p.n_frames, self.fpw) {
                let acct = self.accts.entry(w).or_default();
                acct.outstanding = acct.outstanding.saturating_sub(1);
                acct.dropped += span;
            }
        }
        self.source_done = true;
        self.close_ready();
    }

    /// Applies the pacing policy to an arrived GOP: submit on a ladder
    /// rung, or shed it.
    fn pace(&mut self, sg: StreamGop) {
        let now_s = self.start.elapsed().as_secs_f64();
        let lag = self
            .pending
            .iter()
            .map(|p| now_s - p.arrival.as_secs_f64())
            .fold(0.0, f64::max);
        match self.cfg.policy.decide(lag, self.ladder.rungs.len()) {
            PaceDecision::Drop => self.shed(&sg),
            PaceDecision::Submit { rung } => self.submit(sg, rung),
        }
    }

    fn shed(&mut self, sg: &StreamGop) {
        let n = sg.gop.n_frames();
        self.stats.gops_dropped += 1;
        self.stats.frames_dropped += n;
        self.session.server().record_frame_loss(n as u64, 0);
        for (w, span) in window_spans(sg.start_frame, n, self.fpw) {
            self.accts.entry(w).or_default().dropped += span;
        }
    }

    fn submit(&mut self, sg: StreamGop, rung: usize) {
        let rung = rung.min(self.ladder.rungs.len().saturating_sub(1));
        let step = &self.ladder.rungs[rung];
        let n = sg.gop.n_frames();
        let selection = match step.plan.decode {
            DecodeMode::Video { selection, .. } => selection,
            _ => FrameSelection::All,
        };
        let sel: Vec<usize> = (0..n).filter(|&p| selection.selects(p)).collect();
        let expected = sel.len();
        let base = sg.start_frame;
        let count = Arc::clone(&self.count);
        let infer = move |k: usize, img: &ImageU8| -> (usize, f64) {
            let pos = base + sel.get(k).copied().unwrap_or(0);
            (pos, count(pos, img))
        };
        let opts = SubmitOptions {
            deadline: None,
            priority: self.cfg.priority,
            // Per-GOP degradation is the *pacer's* job — rung choice at
            // submit time — so the in-query ladder stays empty.
            ladder: Vec::new(),
            accuracy: Some(step.accuracy),
            accuracy_floor: self.ladder.accuracy_floor,
            cascade: None,
        };
        let submitted = self.session.server().submit_media_opts_with_infer(
            step.plan.clone(),
            vec![MediaItem::Gop(sg.gop.clone())],
            opts,
            infer,
        );
        match submitted {
            Ok(handle) => {
                self.stats.gops_submitted += 1;
                self.stats.max_rung = self.stats.max_rung.max(rung);
                if rung > 0 {
                    self.stats.gops_downgraded += 1;
                    self.session.server().record_frame_loss(0, expected as u64);
                }
                for (w, _) in window_spans(base, n, self.fpw) {
                    self.accts.entry(w).or_default().outstanding += 1;
                }
                self.pending.push(Pending {
                    handle,
                    arrival: sg.arrival,
                    start_frame: base,
                    n_frames: n,
                    rung,
                });
            }
            // The server refused the work (shutdown/backpressure): shed.
            Err(_) => self.shed(&sg),
        }
    }

    /// Integrates every resolved GOP query.
    fn reap(&mut self) {
        let mut i = 0;
        while i < self.pending.len() {
            match self.pending[i].handle.try_wait() {
                Some(report) => {
                    let p = self.pending.remove(i);
                    self.integrate(p, report);
                }
                None => i += 1,
            }
        }
    }

    fn integrate(&mut self, p: Pending, mut report: smol_serve::QueryReport) {
        let now_s = self.start.elapsed().as_secs_f64();
        self.lags.push((now_s - p.arrival.as_secs_f64()).max(0.0));
        let mut executed = 0usize;
        for (pos, value) in report.take_results::<(usize, f64)>().into_iter().flatten() {
            self.rollup.push(pos, value);
            let acct = self.accts.entry(pos / self.fpw).or_default();
            acct.decoded += 1;
            if p.rung > 0 {
                acct.downgraded += 1;
            }
            executed += 1;
        }
        self.stats.frames_decoded += executed;
        if p.rung > 0 {
            self.stats.frames_downgraded += executed;
        }
        // Failed/skipped outputs never executed; the server already
        // counted them in its own dropped_frames aggregate.
        self.stats.frames_dropped += report.failed + report.skipped;
        if let (Some(acc), Some(floor)) = (report.accuracy, self.ladder.accuracy_floor) {
            if acc < floor - 1e-9 {
                self.stats.floor_violations += 1;
            }
        }
        for (w, span) in window_spans(p.start_frame, p.n_frames, self.fpw) {
            let acct = self.accts.entry(w).or_default();
            acct.outstanding = acct.outstanding.saturating_sub(1);
            if executed > 0 {
                acct.covered += span;
            }
        }
    }

    /// Closes every window whose frames have all arrived and whose
    /// overlapping GOPs have all resolved or been shed.
    fn close_ready(&mut self) {
        loop {
            let w = self.rollup.next_window();
            let all_arrived = self.arrived_frames >= (w + 1) * self.fpw
                || (self.source_done && self.arrived_frames > w * self.fpw);
            if !all_arrived {
                return;
            }
            if self.accts.get(&w).is_some_and(|a| a.outstanding > 0) {
                return;
            }
            let acct = self.accts.remove(&w).unwrap_or_default();
            let aggs = self.rollup.drain_until(w + 1);
            let agg = &aggs[0];
            let expected = agg
                .end_frame
                .min(self.arrived_frames)
                .saturating_sub(agg.start_frame);
            let coverage = if expected > 0 {
                (acct.covered.min(expected)) as f64 / expected as f64
            } else {
                0.0
            };
            let end_stream_frame = agg.end_frame.min(self.arrived_frames);
            let end_wall_s = end_stream_frame as f64 / self.fps / self.scale;
            let output_lag_s = (self.start.elapsed().as_secs_f64() - end_wall_s).max(0.0);
            self.stats.windows += 1;
            self.coverage_sum += coverage;
            self.output_lags.push(output_lag_s);
            let _ = self.tx.send(WindowResult {
                index: agg.index,
                start_s: agg.start_frame as f64 / self.fps,
                end_s: end_stream_frame as f64 / self.fps,
                mean: agg.mean,
                samples: agg.samples,
                expected_frames: expected,
                frames_decoded: acct.decoded,
                frames_downgraded: acct.downgraded,
                frames_dropped: acct.dropped,
                coverage,
                output_lag_s,
            });
        }
    }

    fn finalize(mut self) -> StreamStats {
        self.stats.lag_p50_s = percentile(&self.lags, 0.5);
        self.stats.lag_p95_s = percentile(&self.lags, 0.95);
        self.stats.output_lag_p95_s = percentile(&self.output_lags, 0.95);
        self.stats.window_coverage = if self.stats.windows > 0 {
            self.coverage_sum / self.stats.windows as f64
        } else {
            0.0
        };
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smol_data::{timed_stream, video_catalog};

    #[test]
    fn window_spans_partition_gop_frames() {
        // GOP of 6 frames starting at frame 4, windows of 5.
        assert_eq!(window_spans(4, 6, 5), vec![(0, 1), (1, 5)]);
        assert_eq!(window_spans(0, 5, 5), vec![(0, 5)]);
        assert_eq!(window_spans(10, 3, 5), vec![(2, 3)]);
        let total: usize = window_spans(7, 23, 4).iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 23);
    }

    #[test]
    fn feed_source_releases_gops_in_arrival_order() {
        let feed = timed_stream(&video_catalog()[0], 5, 3, 4, 4.0);
        let mut src = FeedSource::new(feed.clone());
        assert!((src.fps() - feed.corpus.fps).abs() < 1e-12);
        assert!((src.time_scale() - 4.0).abs() < 1e-12);
        let mut last = Duration::ZERO;
        let mut frames = 0;
        let mut n = 0;
        while let Some(sg) = src.next_gop() {
            assert!(sg.arrival >= last, "arrivals must be monotone");
            assert_eq!(sg.start_frame, frames, "stream positions are dense");
            frames += sg.gop.n_frames();
            last = sg.arrival;
            n += 1;
        }
        assert_eq!(n, 3);
        assert_eq!(frames, 12);
    }
}
