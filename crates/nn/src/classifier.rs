//! End-to-end image classifiers: random-conv backbone + trained MLP head.
//!
//! [`Tier`] is the capacity ladder standing in for ResNet depth (§5.1's
//! expanded search space); training supports the paper's low-resolution
//! augmentation (§5.3) by unioning the full-resolution training set with
//! format-materialized copies.

use crate::augment::InputFormat;
use crate::backbone::RandomConvBackbone;
use crate::mlp::{Mlp, TrainParams};
use smol_imgproc::ImageU8;

/// Model-capacity tiers standing in for ResNet-18/34/50.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Stand-in for ResNet-18: small backbone, linear head.
    T18,
    /// Stand-in for ResNet-34: medium backbone, small hidden layer.
    T34,
    /// Stand-in for ResNet-50: large backbone, larger hidden layer.
    T50,
}

impl Tier {
    pub fn name(&self) -> &'static str {
        match self {
            Tier::T18 => "SmolNet-18",
            Tier::T34 => "SmolNet-34",
            Tier::T50 => "SmolNet-50",
        }
    }

    /// Number of random-conv filters in the backbone.
    pub fn backbone_filters(&self) -> usize {
        match self {
            Tier::T18 => 24,
            Tier::T34 => 48,
            Tier::T50 => 96,
        }
    }

    /// Hidden-layer width (0 = linear head).
    pub fn hidden_width(&self) -> usize {
        match self {
            Tier::T18 => 0,
            Tier::T34 => 64,
            Tier::T50 => 128,
        }
    }

    /// The virtual-accelerator model this tier maps onto for throughput
    /// accounting (see `smol-accel`).
    pub fn accel_model_name(&self) -> &'static str {
        match self {
            Tier::T18 => "ResNet-18",
            Tier::T34 => "ResNet-34",
            Tier::T50 => "ResNet-50",
        }
    }

    pub fn ladder() -> [Tier; 3] {
        [Tier::T18, Tier::T34, Tier::T50]
    }
}

/// Training configuration for a classifier.
#[derive(Debug, Clone)]
pub struct ClassifierConfig {
    pub tier: Tier,
    /// Square input edge the backbone sees (the miniature analogue of 224).
    pub input_size: usize,
    /// Head-training hyper-parameters.
    pub train: TrainParams,
    /// Additional input formats whose materializations are unioned into the
    /// training set (the paper's low-resolution augmentation, §5.3). Empty =
    /// regular training.
    pub augment_formats: Vec<InputFormat>,
    /// Seed for the fixed backbone.
    pub backbone_seed: u64,
}

impl ClassifierConfig {
    pub fn new(tier: Tier) -> Self {
        ClassifierConfig {
            tier,
            input_size: 32,
            train: TrainParams::default(),
            augment_formats: Vec::new(),
            backbone_seed: 0xBACC_B04E,
        }
    }

    /// Enables low-resolution-aware training for the given format.
    pub fn with_augmentation(mut self, format: InputFormat) -> Self {
        self.augment_formats.push(format);
        self
    }
}

/// A trained classifier.
#[derive(Debug, Clone)]
pub struct SmolClassifier {
    tier: Tier,
    input_size: usize,
    backbone: RandomConvBackbone,
    head: Mlp,
}

impl SmolClassifier {
    /// Trains a classifier on native-resolution images.
    pub fn train(
        cfg: &ClassifierConfig,
        images: &[ImageU8],
        labels: &[usize],
        n_classes: usize,
    ) -> Self {
        assert_eq!(images.len(), labels.len());
        assert!(n_classes >= 2);
        let backbone =
            RandomConvBackbone::new(cfg.backbone_seed, cfg.tier.backbone_filters(), 5, 2, 3);
        // Training set: full-res materializations plus any augmentation
        // formats (the paper's low-resolution-aware procedure).
        let mut formats = vec![InputFormat::FullRes];
        formats.extend(cfg.augment_formats.iter().copied());
        let mut features = Vec::with_capacity(images.len() * formats.len());
        let mut ys = Vec::with_capacity(images.len() * formats.len());
        for fmt in &formats {
            for (img, &y) in images.iter().zip(labels) {
                let seen = fmt.materialize(img, cfg.input_size);
                features.push(backbone.extract(&seen));
                ys.push(y);
            }
        }
        let dim = backbone.feature_dim();
        let sizes: Vec<usize> = if cfg.tier.hidden_width() == 0 {
            vec![dim, n_classes]
        } else {
            vec![dim, cfg.tier.hidden_width(), n_classes]
        };
        let mut head = Mlp::new(&sizes, cfg.train.seed);
        head.train(&features, &ys, &cfg.train);
        SmolClassifier {
            tier: cfg.tier,
            input_size: cfg.input_size,
            backbone,
            head,
        }
    }

    pub fn tier(&self) -> Tier {
        self.tier
    }

    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Extracts backbone features for an image already materialized to the
    /// model input (used by callers that manage formats themselves).
    pub fn features(&self, seen: &ImageU8) -> Vec<f32> {
        self.backbone.extract(seen)
    }

    /// Predicts the class of a native image as observed through `format`.
    pub fn predict(&self, native: &ImageU8, format: InputFormat) -> usize {
        let seen = format.materialize(native, self.input_size);
        self.head.predict(&self.backbone.extract(&seen))
    }

    /// Class probabilities for a native image observed through `format`.
    pub fn predict_probs(&self, native: &ImageU8, format: InputFormat) -> Vec<f32> {
        let seen = format.materialize(native, self.input_size);
        self.head.predict_probs(&self.backbone.extract(&seen))
    }

    /// Predicts directly from pixels the model would see (no format step).
    pub fn predict_seen(&self, seen: &ImageU8) -> usize {
        self.head.predict(&self.backbone.extract(seen))
    }

    /// Top-1 accuracy of the classifier on native images observed through
    /// `format`.
    pub fn evaluate(&self, images: &[ImageU8], labels: &[usize], format: InputFormat) -> f64 {
        if images.is_empty() {
            return 0.0;
        }
        let correct = images
            .iter()
            .zip(labels)
            .filter(|(img, &y)| self.predict(img, format) == y)
            .count();
        correct as f64 / images.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::ThumbCodec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Tiny 3-class texture dataset: classes differ in stripe orientation
    /// and stripe frequency (high-frequency content matters).
    fn texture_dataset(n_per_class: usize, seed: u64) -> (Vec<ImageU8>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut imgs = Vec::new();
        let mut labels = Vec::new();
        for class in 0..3usize {
            for _ in 0..n_per_class {
                let mut img = ImageU8::zeros(48, 48, 3);
                let phase: f64 = rng.gen::<f64>() * 10.0;
                for y in 0..48 {
                    for x in 0..48 {
                        let t = match class {
                            0 => (x as f64 / 3.0 + phase).sin(),
                            1 => (y as f64 / 3.0 + phase).sin(),
                            _ => ((x + y) as f64 / 1.5 + phase).sin(),
                        };
                        let v = ((t * 0.5 + 0.5) * 200.0 + 20.0) as u8;
                        let noise = (rng.gen::<f64>() * 20.0) as u8;
                        img.set(x, y, 0, v.saturating_add(noise));
                        img.set(x, y, 1, v);
                        img.set(x, y, 2, 255 - v);
                    }
                }
                imgs.push(img);
                labels.push(class);
            }
        }
        (imgs, labels)
    }

    #[test]
    fn classifier_learns_textures() {
        let (train_x, train_y) = texture_dataset(30, 1);
        let (test_x, test_y) = texture_dataset(15, 2);
        let cfg = ClassifierConfig::new(Tier::T34);
        let clf = SmolClassifier::train(&cfg, &train_x, &train_y, 3);
        let acc = clf.evaluate(&test_x, &test_y, InputFormat::FullRes);
        assert!(acc > 0.8, "acc={acc}");
    }

    #[test]
    fn low_res_aug_training_recovers_low_res_accuracy() {
        let (train_x, train_y) = texture_dataset(30, 3);
        let (test_x, test_y) = texture_dataset(15, 4);
        let thumb = InputFormat::Thumbnail {
            short: 16,
            codec: ThumbCodec::Lossless,
        };
        let reg = SmolClassifier::train(&ClassifierConfig::new(Tier::T34), &train_x, &train_y, 3);
        let aug = SmolClassifier::train(
            &ClassifierConfig::new(Tier::T34).with_augmentation(thumb),
            &train_x,
            &train_y,
            3,
        );
        let reg_low = reg.evaluate(&test_x, &test_y, thumb);
        let aug_low = aug.evaluate(&test_x, &test_y, thumb);
        assert!(
            aug_low >= reg_low,
            "augmented training must not hurt low-res accuracy: reg={reg_low} aug={aug_low}"
        );
    }

    #[test]
    fn probs_sum_to_one_and_match_prediction() {
        let (train_x, train_y) = texture_dataset(10, 5);
        let clf = SmolClassifier::train(&ClassifierConfig::new(Tier::T18), &train_x, &train_y, 3);
        let p = clf.predict_probs(&train_x[0], InputFormat::FullRes);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let pred = clf.predict(&train_x[0], InputFormat::FullRes);
        assert_eq!(crate::mlp::argmax(&p), pred);
    }

    #[test]
    fn tier_capacity_increases() {
        assert!(Tier::T50.backbone_filters() > Tier::T34.backbone_filters());
        assert!(Tier::T34.backbone_filters() > Tier::T18.backbone_filters());
    }

    #[test]
    fn deterministic_training() {
        let (train_x, train_y) = texture_dataset(10, 6);
        let cfg = ClassifierConfig::new(Tier::T18);
        let a = SmolClassifier::train(&cfg, &train_x, &train_y, 3);
        let b = SmolClassifier::train(&cfg, &train_x, &train_y, 3);
        for img in &train_x {
            assert_eq!(
                a.predict(img, InputFormat::FullRes),
                b.predict(img, InputFormat::FullRes)
            );
        }
    }
}
