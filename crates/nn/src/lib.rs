//! # smol-nn
//!
//! A small, real, from-scratch neural-network library powering the
//! reproduction's **empirical accuracy track** (DESIGN.md): every accuracy
//! number in the harnesses comes from actually training these models with
//! SGD on synthetic data — only *throughput* is simulated (see `smol-accel`).
//!
//! * [`dense`] — fully-connected layers, ReLU, softmax cross-entropy, SGD
//!   with momentum (gradient-checked);
//! * [`backbone`] — fixed random convolutional feature banks whose capacity
//!   tiers stand in for ResNet depth (§5.1);
//! * [`mlp`] — trainable heads;
//! * [`augment`] — input-format simulation (full-res / PNG / JPEG
//!   thumbnails) with *real* codec artifacts, used for evaluation and for
//!   the paper's low-resolution-aware training (§5.3);
//! * [`classifier`] — the end-to-end trainable classifier.

pub mod augment;
pub mod backbone;
pub mod classifier;
pub mod dense;
pub mod mlp;

pub use augment::{InputFormat, ThumbCodec};
pub use backbone::RandomConvBackbone;
pub use classifier::{ClassifierConfig, SmolClassifier, Tier};
pub use mlp::{argmax, Mlp, TrainParams};
