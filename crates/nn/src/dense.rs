//! Fully-connected layer with SGD+momentum training.

use rand::rngs::StdRng;
use rand::Rng;

/// A dense (fully-connected) layer `out = W·x + b`.
///
/// Weights are stored row-major: `w[o * in_dim + i]`. Gradients accumulate
/// across a mini-batch and are applied by [`Dense::sgd_step`].
#[derive(Debug, Clone)]
pub struct Dense {
    pub in_dim: usize,
    pub out_dim: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    vel_w: Vec<f32>,
    vel_b: Vec<f32>,
}

impl Dense {
    /// He-uniform initialization for ReLU networks: `U(-b, b)` with
    /// `b = sqrt(6 / fan_in)`, whose variance matches He-normal's
    /// `2 / fan_in` (a uniform bound of `sqrt(2 / fan_in)` yields only a
    /// third of that variance and starves deep heads of gradient signal).
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let scale = (6.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Dense {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
            vel_w: vec![0.0; in_dim * out_dim],
            vel_b: vec![0.0; out_dim],
        }
    }

    /// Forward pass for one sample.
    pub fn forward(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            *out_v = acc;
        }
    }

    /// Backward pass for one sample: accumulates gradients and writes
    /// dL/dx into `grad_in` (pass an empty slice to skip input gradients
    /// for the first layer).
    pub fn backward(&mut self, x: &[f32], grad_out: &[f32], grad_in: &mut [f32]) {
        debug_assert_eq!(grad_out.len(), self.out_dim);
        for (o, &go) in grad_out.iter().enumerate() {
            self.grad_b[o] += go;
            let row = &mut self.grad_w[o * self.in_dim..(o + 1) * self.in_dim];
            for (gw, xi) in row.iter_mut().zip(x) {
                *gw += go * xi;
            }
        }
        if !grad_in.is_empty() {
            debug_assert_eq!(grad_in.len(), self.in_dim);
            grad_in.fill(0.0);
            for (o, &go) in grad_out.iter().enumerate() {
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                for (gi, wi) in grad_in.iter_mut().zip(row) {
                    *gi += go * wi;
                }
            }
        }
    }

    /// Applies accumulated gradients (averaged over `batch` samples) with
    /// momentum and weight decay, then clears them.
    pub fn sgd_step(&mut self, lr: f32, momentum: f32, weight_decay: f32, batch: usize) {
        let inv = 1.0 / batch.max(1) as f32;
        for i in 0..self.w.len() {
            let g = self.grad_w[i] * inv + weight_decay * self.w[i];
            self.vel_w[i] = momentum * self.vel_w[i] - lr * g;
            self.w[i] += self.vel_w[i];
            self.grad_w[i] = 0.0;
        }
        for i in 0..self.b.len() {
            let g = self.grad_b[i] * inv;
            self.vel_b[i] = momentum * self.vel_b[i] - lr * g;
            self.b[i] += self.vel_b[i];
            self.grad_b[i] = 0.0;
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// In-place ReLU; returns a mask usable for the backward pass.
pub fn relu_forward(x: &mut [f32]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward of ReLU: zeroes gradients where the activation was clamped.
pub fn relu_backward(activated: &[f32], grad: &mut [f32]) {
    for (g, &a) in grad.iter_mut().zip(activated) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically-stable softmax + cross-entropy.
///
/// Writes softmax probabilities into `probs` and returns the loss; the
/// gradient w.r.t. logits is `probs - onehot(label)` (computed by caller).
pub fn softmax_xent(logits: &[f32], label: usize, probs: &mut [f32]) -> f32 {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (p, &l) in probs.iter_mut().zip(logits) {
        *p = (l - max).exp();
        sum += *p;
    }
    for p in probs.iter_mut() {
        *p /= sum;
    }
    -(probs[label].max(1e-12)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_computes_affine() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        d.w.copy_from_slice(&[1.0, 2.0, -1.0, 0.5]);
        d.b.copy_from_slice(&[0.1, -0.1]);
        let mut out = [0.0; 2];
        d.forward(&[3.0, 4.0], &mut out);
        assert!((out[0] - (3.0 + 8.0 + 0.1)).abs() < 1e-6);
        assert!((out[1] - (-3.0 + 2.0 - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn gradient_check_numerical() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = [0.5f32, -0.3, 0.8];
        let label = 1usize;
        let eps = 1e-3f32;

        // Analytic gradient of one parameter.
        let mut logits = [0.0f32; 2];
        let mut probs = [0.0f32; 2];
        d.forward(&x, &mut logits);
        softmax_xent(&logits, label, &mut probs);
        let mut grad_out = probs;
        grad_out[label] -= 1.0;
        let mut sink = [0.0f32; 3];
        d.backward(&x, &grad_out, &mut sink);
        let analytic = d.grad_w[2]; // dL/dw[0][2]

        // Numerical gradient.
        let orig = d.w[2];
        d.w[2] = orig + eps;
        d.forward(&x, &mut logits);
        let lp = softmax_xent(&logits, label, &mut probs);
        d.w[2] = orig - eps;
        d.forward(&x, &mut logits);
        let lm = softmax_xent(&logits, label, &mut probs);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic={analytic} numeric={numeric}"
        );
    }

    #[test]
    fn sgd_reduces_loss_on_toy_problem() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut d = Dense::new(2, 2, &mut rng);
        // Linearly separable: class = x0 > x1.
        let data: Vec<([f32; 2], usize)> = vec![
            ([1.0, 0.0], 0),
            ([0.8, 0.1], 0),
            ([0.9, -0.5], 0),
            ([0.0, 1.0], 1),
            ([0.1, 0.9], 1),
            ([-0.5, 0.7], 1),
        ];
        let mut loss_first = 0.0;
        let mut loss_last = 0.0;
        for epoch in 0..200 {
            let mut total = 0.0;
            for (x, y) in &data {
                let mut logits = [0.0f32; 2];
                let mut probs = [0.0f32; 2];
                d.forward(x, &mut logits);
                total += softmax_xent(&logits, *y, &mut probs);
                let mut g = probs;
                g[*y] -= 1.0;
                d.backward(x, &g, &mut []);
                d.sgd_step(0.1, 0.9, 0.0, 1);
            }
            if epoch == 0 {
                loss_first = total;
            }
            loss_last = total;
        }
        assert!(
            loss_last < loss_first * 0.1,
            "first={loss_first} last={loss_last}"
        );
    }

    #[test]
    fn softmax_probs_sum_to_one() {
        let logits = [1.0f32, 2.0, 3.0, -4.0];
        let mut probs = [0.0f32; 4];
        let loss = softmax_xent(&logits, 2, &mut probs);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(loss > 0.0);
        assert!(probs[2] > probs[0]);
    }

    #[test]
    fn relu_roundtrip() {
        let mut x = [1.0f32, -2.0, 0.0, 3.0];
        relu_forward(&mut x);
        assert_eq!(x, [1.0, 0.0, 0.0, 3.0]);
        let mut g = [1.0f32; 4];
        relu_backward(&x, &mut g);
        assert_eq!(g, [1.0, 0.0, 0.0, 1.0]);
    }
}
