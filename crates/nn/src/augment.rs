//! Input-format simulation and low-resolution-aware augmentation (§5.3).
//!
//! An [`InputFormat`] describes how an image arrives at inference time:
//! full-resolution, or as a natively-present thumbnail (lossless or lossy).
//! [`InputFormat::materialize`] produces exactly the pixels the DNN sees —
//! including *real* codec artifacts for lossy thumbnails, produced by a
//! round-trip through `smol-codec`'s sjpg — and is used both at evaluation
//! time and as the augmentation transform during low-resolution-aware
//! training.

use smol_codec::{sjpg, SjpgEncoder};
use smol_imgproc::ops::resize::{resize_bilinear_u8, resize_short_edge_u8};
use smol_imgproc::ImageU8;

/// Thumbnail encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThumbCodec {
    /// Lossless (spng/PNG-like): downsampling artifacts only.
    Lossless,
    /// Lossy (sjpg/JPEG-like) at a given quality: downsampling plus real
    /// quantization artifacts.
    Lossy { quality: u8 },
}

/// How an input image arrives at the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputFormat {
    /// Native full-resolution image.
    FullRes,
    /// Natively-present thumbnail with the given short edge.
    Thumbnail { short: usize, codec: ThumbCodec },
}

impl InputFormat {
    /// Produces the pixels the DNN consumes: simulate the stored format,
    /// then resize to the model's square `input_size`.
    pub fn materialize(&self, native: &ImageU8, input_size: usize) -> ImageU8 {
        let received = match self {
            InputFormat::FullRes => native.clone(),
            InputFormat::Thumbnail { short, codec } => {
                let thumb = resize_short_edge_u8(native, *short)
                    .expect("thumbnail resize of non-empty image");
                match codec {
                    ThumbCodec::Lossless => thumb,
                    ThumbCodec::Lossy { quality } => {
                        let enc = SjpgEncoder::new(*quality)
                            .encode(&thumb)
                            .expect("encode thumbnail");
                        sjpg::decode(&enc).expect("decode own encoding")
                    }
                }
            }
        };
        resize_bilinear_u8(&received, input_size, input_size).expect("resize to model input size")
    }

    /// Short label for reports (mirrors Table 7's row labels).
    pub fn label(&self) -> String {
        match self {
            InputFormat::FullRes => "full-res".to_string(),
            InputFormat::Thumbnail { short, codec } => match codec {
                ThumbCodec::Lossless => format!("{short}, PNG"),
                ThumbCodec::Lossy { quality } => format!("{short}, JPEG (q={quality})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detailed(w: usize, h: usize) -> ImageU8 {
        let mut img = ImageU8::zeros(w, h, 3);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, 0, (((x * 7) ^ (y * 3)) % 256) as u8);
                img.set(x, y, 1, ((x * y) % 256) as u8);
                img.set(x, y, 2, ((x + y * 2) % 256) as u8);
            }
        }
        img
    }

    #[test]
    fn full_res_materializes_to_input_size() {
        let img = detailed(48, 40);
        let out = InputFormat::FullRes.materialize(&img, 32);
        assert_eq!((out.width(), out.height()), (32, 32));
    }

    #[test]
    fn thumbnail_loses_information() {
        let img = detailed(48, 48);
        let full = InputFormat::FullRes.materialize(&img, 32);
        let thumb = InputFormat::Thumbnail {
            short: 16,
            codec: ThumbCodec::Lossless,
        }
        .materialize(&img, 32);
        let mad: f64 = full
            .data()
            .iter()
            .zip(thumb.data())
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / full.data().len() as f64;
        assert!(mad > 5.0, "thumbnail must differ from full-res: mad={mad}");
    }

    #[test]
    fn lossy_thumbnail_noisier_than_lossless() {
        let img = detailed(48, 48);
        let lossless = InputFormat::Thumbnail {
            short: 24,
            codec: ThumbCodec::Lossless,
        }
        .materialize(&img, 32);
        let lossy = InputFormat::Thumbnail {
            short: 24,
            codec: ThumbCodec::Lossy { quality: 50 },
        }
        .materialize(&img, 32);
        let mad: f64 = lossless
            .data()
            .iter()
            .zip(lossy.data())
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum::<f64>()
            / lossy.data().len() as f64;
        assert!(mad > 1.0, "lossy codec must add artifacts: mad={mad}");
    }

    #[test]
    fn labels_match_table7_convention() {
        assert_eq!(InputFormat::FullRes.label(), "full-res");
        assert_eq!(
            InputFormat::Thumbnail {
                short: 161,
                codec: ThumbCodec::Lossless
            }
            .label(),
            "161, PNG"
        );
        assert_eq!(
            InputFormat::Thumbnail {
                short: 161,
                codec: ThumbCodec::Lossy { quality: 75 }
            }
            .label(),
            "161, JPEG (q=75)"
        );
    }
}
