//! Multi-layer perceptron head trained with mini-batch SGD.

use crate::dense::{relu_backward, relu_forward, softmax_xent, Dense};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An MLP classifier head: `input → [hidden ReLU]* → logits`.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

/// Hyper-parameters for head training.
#[derive(Debug, Clone, Copy)]
pub struct TrainParams {
    pub epochs: usize,
    pub batch: usize,
    pub lr: f32,
    pub momentum: f32,
    pub weight_decay: f32,
    pub seed: u64,
    /// Multiplicative LR decay applied each epoch.
    pub lr_decay: f32,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            epochs: 12,
            batch: 32,
            lr: 0.15,
            momentum: 0.9,
            weight_decay: 1e-4,
            seed: 0,
            lr_decay: 0.9,
        }
    }
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[in, hidden, classes]`
    /// or `[in, classes]` for a linear model.
    pub fn new(sizes: &[usize], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output dims");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        Mlp { layers }
    }

    pub fn n_classes(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim
    }

    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Forward pass; returns logits.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut cur = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = vec![0.0f32; layer.out_dim];
            layer.forward(&cur, &mut out);
            if i + 1 < self.layers.len() {
                relu_forward(&mut out);
            }
            cur = out;
        }
        cur
    }

    /// Predicted class for one feature vector.
    pub fn predict(&self, x: &[f32]) -> usize {
        let logits = self.forward(x);
        argmax(&logits)
    }

    /// Softmax class probabilities.
    pub fn predict_probs(&self, x: &[f32]) -> Vec<f32> {
        let logits = self.forward(x);
        let mut probs = vec![0.0f32; logits.len()];
        // Label 0 is arbitrary; we only need the probabilities.
        softmax_xent(&logits, 0, &mut probs);
        probs
    }

    /// Trains on cached feature vectors; returns the final average loss.
    pub fn train(&mut self, features: &[Vec<f32>], labels: &[usize], params: &TrainParams) -> f32 {
        assert_eq!(features.len(), labels.len());
        assert!(!features.is_empty(), "empty training set");
        let n = features.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(0x5EED));
        let mut lr = params.lr;
        let mut final_loss = f32::INFINITY;
        // Per-layer activation and gradient scratch.
        let depth = self.layers.len();
        for _epoch in 0..params.epochs {
            order.shuffle(&mut rng);
            let mut total_loss = 0.0f32;
            for chunk in order.chunks(params.batch) {
                for &idx in chunk {
                    let x = &features[idx];
                    let y = labels[idx];
                    // Forward, keeping activations.
                    let mut acts: Vec<Vec<f32>> = Vec::with_capacity(depth + 1);
                    acts.push(x.clone());
                    for (i, layer) in self.layers.iter().enumerate() {
                        let mut out = vec![0.0f32; layer.out_dim];
                        layer.forward(acts.last().expect("pushed"), &mut out);
                        if i + 1 < depth {
                            relu_forward(&mut out);
                        }
                        acts.push(out);
                    }
                    let logits = acts.last().expect("pushed");
                    let mut probs = vec![0.0f32; logits.len()];
                    total_loss += softmax_xent(logits, y, &mut probs);
                    // Backward.
                    let mut grad = probs;
                    grad[y] -= 1.0;
                    for i in (0..depth).rev() {
                        let mut grad_in = if i > 0 {
                            vec![0.0f32; self.layers[i].in_dim]
                        } else {
                            Vec::new()
                        };
                        self.layers[i].backward(&acts[i], &grad, &mut grad_in);
                        if i > 0 {
                            relu_backward(&acts[i], &mut grad_in);
                            grad = grad_in;
                        }
                    }
                }
                for layer in &mut self.layers {
                    layer.sgd_step(lr, params.momentum, params.weight_decay, chunk.len());
                }
            }
            final_loss = total_loss / n as f32;
            lr *= params.lr_decay;
        }
        final_loss
    }

    /// Top-1 accuracy over cached features.
    pub fn accuracy(&self, features: &[Vec<f32>], labels: &[usize]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let correct = features
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / features.len() as f64
    }
}

/// Index of the maximum element.
pub fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Two Gaussian blobs in 8-D.
    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let center = if class == 0 { 0.5 } else { -0.5 };
            let x: Vec<f32> = (0..8)
                .map(|_| center + (rng.gen::<f32>() - 0.5) * 0.8)
                .collect();
            xs.push(x);
            ys.push(class);
        }
        (xs, ys)
    }

    #[test]
    fn linear_mlp_learns_blobs() {
        let (xs, ys) = blobs(200, 3);
        let mut mlp = Mlp::new(&[8, 2], 0);
        mlp.train(&xs, &ys, &TrainParams::default());
        assert!(mlp.accuracy(&xs, &ys) > 0.95);
    }

    #[test]
    fn hidden_layer_learns_xor_like_problem() {
        // XOR of the signs of the first two dims: not linearly separable.
        // Quadrants are cycled deterministically so the classes are
        // exactly balanced — the 0.75 linear ceiling below only holds for
        // balanced XOR (with imbalance, the best line can exceed it).
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400 {
            let a: f32 = if i % 2 == 0 { 1.0 } else { -1.0 };
            let b: f32 = if (i / 2) % 2 == 0 { 1.0 } else { -1.0 };
            let mut noise = || (rng.gen::<f32>() - 0.5) * 0.2;
            xs.push(vec![a + noise(), b + noise()]);
            ys.push(((a > 0.0) ^ (b > 0.0)) as usize);
        }
        let mut linear = Mlp::new(&[2, 2], 1);
        let mut deep = Mlp::new(&[2, 16, 2], 1);
        let params = TrainParams {
            epochs: 60,
            lr: 0.1,
            ..Default::default()
        };
        linear.train(&xs, &ys, &params);
        deep.train(&xs, &ys, &params);
        let lin_acc = linear.accuracy(&xs, &ys);
        let deep_acc = deep.accuracy(&xs, &ys);
        assert!(lin_acc < 0.75, "linear cannot solve XOR: {lin_acc}");
        assert!(deep_acc > 0.9, "hidden layer should solve XOR: {deep_acc}");
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let (xs, ys) = blobs(100, 5);
        let mut a = Mlp::new(&[8, 2], 9);
        let mut b = Mlp::new(&[8, 2], 9);
        let params = TrainParams::default();
        a.train(&xs, &ys, &params);
        b.train(&xs, &ys, &params);
        for (x, _) in xs.iter().zip(&ys) {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    fn probs_are_normalized() {
        let mlp = Mlp::new(&[4, 3], 2);
        let p = mlp.predict_probs(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn param_count_correct() {
        let mlp = Mlp::new(&[10, 20, 5], 0);
        assert_eq!(mlp.param_count(), 10 * 20 + 20 + 20 * 5 + 5);
    }

    #[test]
    fn argmax_basic() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }
}
