//! Fixed random convolutional feature backbones.
//!
//! The reproduction's stand-in for "ResNet depth" is backbone capacity:
//! a bank of fixed random convolution filters (random-feature methods are
//! well understood to approximate kernel machines; more filters ⇒ richer
//! features ⇒ higher attainable accuracy). Only the head on top of the
//! backbone is trained, mirroring the specialized-NN fine-tuning setup the
//! paper inherits from NoScope/BlazeIt/Tahoma.
//!
//! Crucially for §5.2/§5.3: filters respond to *spatial frequency content*,
//! so downsampling an input genuinely destroys feature information, and
//! training the head on low-resolution-augmented inputs genuinely adapts it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smol_imgproc::ImageU8;

/// A bank of `n_filters` random `k×k×3` filters applied at `stride`,
/// followed by ReLU and average pooling over a `pool_grid × pool_grid`
/// spatial grid.
#[derive(Debug, Clone)]
pub struct RandomConvBackbone {
    filters: Vec<f32>,
    n_filters: usize,
    k: usize,
    stride: usize,
    pool_grid: usize,
}

impl RandomConvBackbone {
    pub fn new(seed: u64, n_filters: usize, k: usize, stride: usize, pool_grid: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = n_filters * k * k * 3;
        // Zero-mean filters so responses measure structure, not brightness.
        let mut filters: Vec<f32> = (0..len).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
        let per_filter = k * k * 3;
        for f in 0..n_filters {
            let chunk = &mut filters[f * per_filter..(f + 1) * per_filter];
            let mean: f32 = chunk.iter().sum::<f32>() / per_filter as f32;
            let mut norm = 0.0f32;
            for v in chunk.iter_mut() {
                *v -= mean;
                norm += *v * *v;
            }
            let norm = norm.sqrt().max(1e-6);
            for v in chunk.iter_mut() {
                *v /= norm;
            }
        }
        RandomConvBackbone {
            filters,
            n_filters,
            k,
            stride,
            pool_grid,
        }
    }

    /// Output feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.n_filters * self.pool_grid * self.pool_grid
    }

    /// Extracts pooled random-conv features from an RGB image.
    ///
    /// The image may be any size ≥ `k`; responses are pooled into the fixed
    /// grid so the feature dimension is size-independent.
    pub fn extract(&self, img: &ImageU8) -> Vec<f32> {
        assert_eq!(img.channels(), 3, "backbone expects RGB");
        let (w, h) = (img.width(), img.height());
        let k = self.k;
        let out_w = (w.saturating_sub(k)) / self.stride + 1;
        let out_h = (h.saturating_sub(k)) / self.stride + 1;
        let g = self.pool_grid;
        let mut features = vec![0.0f32; self.feature_dim()];
        let mut counts = vec![0.0f32; g * g];
        let per_filter = k * k * 3;

        // Pool-cell assignment per output position.
        for oy in 0..out_h {
            let cell_y = (oy * g / out_h.max(1)).min(g - 1);
            for ox in 0..out_w {
                let cell_x = (ox * g / out_w.max(1)).min(g - 1);
                let cell = cell_y * g + cell_x;
                counts[cell] += 1.0;
                // All filters share the input patch read.
                let x0 = ox * self.stride;
                let y0 = oy * self.stride;
                for f in 0..self.n_filters {
                    let filt = &self.filters[f * per_filter..(f + 1) * per_filter];
                    let mut acc = 0.0f32;
                    let mut fi = 0usize;
                    for dy in 0..k {
                        let row = img.row(y0 + dy);
                        let base = x0 * 3;
                        for v in &row[base..base + k * 3] {
                            // Center pixel values to [-0.5, 0.5].
                            acc += filt[fi] * (*v as f32 / 255.0 - 0.5);
                            fi += 1;
                        }
                    }
                    if acc > 0.0 {
                        features[f * g * g + cell] += acc;
                    }
                }
            }
        }
        // Average within each pool cell.
        for f in 0..self.n_filters {
            for cell in 0..g * g {
                let c = counts[cell];
                if c > 0.0 {
                    features[f * g * g + cell] /= c;
                }
            }
        }
        features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: usize, h: usize, period: usize) -> ImageU8 {
        let mut img = ImageU8::zeros(w, h, 3);
        for y in 0..h {
            for x in 0..w {
                let v = if (x / period + y / period).is_multiple_of(2) {
                    220
                } else {
                    30
                };
                for c in 0..3 {
                    img.set(x, y, c, v);
                }
            }
        }
        img
    }

    #[test]
    fn feature_dim_matches() {
        let b = RandomConvBackbone::new(0, 16, 5, 2, 3);
        assert_eq!(b.feature_dim(), 16 * 9);
        assert_eq!(b.extract(&checker(32, 32, 4)).len(), 16 * 9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RandomConvBackbone::new(5, 8, 3, 1, 2);
        let b = RandomConvBackbone::new(5, 8, 3, 1, 2);
        let img = checker(16, 16, 2);
        assert_eq!(a.extract(&img), b.extract(&img));
    }

    #[test]
    fn different_textures_give_different_features() {
        let b = RandomConvBackbone::new(1, 16, 5, 2, 2);
        let fine = b.extract(&checker(32, 32, 2));
        let coarse = b.extract(&checker(32, 32, 8));
        let dist: f32 = fine
            .iter()
            .zip(&coarse)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 0.05, "dist={dist}");
    }

    #[test]
    fn brightness_invariance_from_zero_mean_filters() {
        let b = RandomConvBackbone::new(2, 8, 3, 1, 2);
        let dark = ImageU8::from_vec(16, 16, 3, vec![40; 16 * 16 * 3]).unwrap();
        let bright = ImageU8::from_vec(16, 16, 3, vec![200; 16 * 16 * 3]).unwrap();
        let fd = b.extract(&dark);
        let fb = b.extract(&bright);
        for (a, b) in fd.iter().zip(&fb) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn size_independent_feature_length() {
        let b = RandomConvBackbone::new(3, 8, 5, 2, 2);
        assert_eq!(
            b.extract(&checker(24, 24, 3)).len(),
            b.extract(&checker(48, 48, 3)).len()
        );
    }
}
