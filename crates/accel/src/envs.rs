//! Execution-environment overhead model (Table 1).
//!
//! The same DNN on the same device runs at wildly different rates under
//! different software stacks: Keras 243 im/s, PyTorch 424 im/s, TensorRT
//! 4513 im/s for ResNet-50 on the T4. The factors below are those ratios;
//! they capture "efficient use of hardware can result in over a 17×
//! improvement" (§2) without modeling the frameworks themselves.

use serde::{Deserialize, Serialize};

/// DNN execution environments benchmarked in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionEnv {
    /// Keras (used by Tahoma).
    Keras,
    /// Eager PyTorch.
    PyTorch,
    /// TensorRT-compiled graphs (Smol's backend).
    TensorRt,
}

impl ExecutionEnv {
    /// Throughput multiplier relative to TensorRT.
    pub fn throughput_factor(&self) -> f64 {
        match self {
            ExecutionEnv::Keras => 243.0 / 4513.0,
            ExecutionEnv::PyTorch => 424.0 / 4513.0,
            ExecutionEnv::TensorRt => 1.0,
        }
    }

    /// Optimal batch size used in the paper's Table 1 measurement.
    pub fn table1_batch(&self) -> usize {
        match self {
            ExecutionEnv::Keras => 64,
            ExecutionEnv::PyTorch => 256,
            ExecutionEnv::TensorRt => 64,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            ExecutionEnv::Keras => "Keras",
            ExecutionEnv::PyTorch => "PyTorch",
            ExecutionEnv::TensorRt => "TensorRT",
        }
    }

    pub fn all() -> [ExecutionEnv; 3] {
        [
            ExecutionEnv::Keras,
            ExecutionEnv::PyTorch,
            ExecutionEnv::TensorRt,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensorrt_gives_17x_over_keras() {
        let ratio =
            ExecutionEnv::TensorRt.throughput_factor() / ExecutionEnv::Keras.throughput_factor();
        assert!(ratio > 17.0 && ratio < 20.0, "ratio={ratio}");
    }

    #[test]
    fn ordering_matches_table1() {
        assert!(
            ExecutionEnv::Keras.throughput_factor() < ExecutionEnv::PyTorch.throughput_factor()
        );
        assert!(
            ExecutionEnv::PyTorch.throughput_factor() < ExecutionEnv::TensorRt.throughput_factor()
        );
    }
}
