//! Virtual DNN catalog, calibrated to the paper's throughput anchors
//! (Tables 1, 2; §2 and §5.1) on the T4 with TensorRT at batch 64.
//!
//! The catalog also records the paper's published ImageNet accuracies so
//! harnesses can print paper-reference columns next to measured values from
//! the empirical `smol-nn` track.

use crate::device::GpuModel;
use crate::envs::ExecutionEnv;
use serde::{Deserialize, Serialize};

/// DNN architectures used across the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    ResNet18,
    ResNet34,
    ResNet50,
    ResNet101,
    ResNet152,
    /// MobileNet-SSD detector used by MLPerf Inference (§2).
    MobileNetSsd,
    /// BlazeIt's "tiny ResNet" specialized NN (§5.1: up to 250k im/s).
    TinyResNet,
    /// A representative Tahoma cascade stage (small specialized CNN).
    TahomaSmall,
    /// Mask R-CNN target model for the video experiments (3–5 fps, §1).
    MaskRcnn,
}

/// Static description + calibration anchors for a virtual model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirtualModel {
    pub kind: ModelKind,
    pub name: &'static str,
    /// Images/second on the T4 with TensorRT at the model's optimal batch.
    pub t4_tensorrt_throughput: f64,
    /// Paper-published ImageNet top-1 accuracy (where reported); the
    /// reproduction's empirical accuracies come from `smol-nn` instead.
    pub paper_top1_accuracy: Option<f64>,
    /// Input edge (square) expected by the model.
    pub input_size: usize,
    /// Batch size the throughput anchor was measured at.
    pub optimal_batch: usize,
}

impl ModelKind {
    pub fn spec(&self) -> VirtualModel {
        match self {
            ModelKind::ResNet18 => VirtualModel {
                kind: *self,
                name: "ResNet-18",
                t4_tensorrt_throughput: 12_592.0,
                paper_top1_accuracy: Some(68.2),
                input_size: 224,
                optimal_batch: 64,
            },
            ModelKind::ResNet34 => VirtualModel {
                kind: *self,
                name: "ResNet-34",
                t4_tensorrt_throughput: 6_860.0,
                paper_top1_accuracy: Some(71.9),
                input_size: 224,
                optimal_batch: 64,
            },
            ModelKind::ResNet50 => VirtualModel {
                kind: *self,
                name: "ResNet-50",
                t4_tensorrt_throughput: 4_513.0,
                paper_top1_accuracy: Some(74.34),
                input_size: 224,
                optimal_batch: 64,
            },
            ModelKind::ResNet101 => VirtualModel {
                kind: *self,
                name: "ResNet-101",
                t4_tensorrt_throughput: 2_600.0,
                paper_top1_accuracy: Some(77.37),
                input_size: 224,
                optimal_batch: 64,
            },
            ModelKind::ResNet152 => VirtualModel {
                kind: *self,
                name: "ResNet-152",
                t4_tensorrt_throughput: 1_850.0,
                paper_top1_accuracy: Some(78.31),
                input_size: 224,
                optimal_batch: 64,
            },
            ModelKind::MobileNetSsd => VirtualModel {
                kind: *self,
                name: "MobileNet-SSD",
                t4_tensorrt_throughput: 7_431.0,
                paper_top1_accuracy: None,
                input_size: 300,
                optimal_batch: 64,
            },
            ModelKind::TinyResNet => VirtualModel {
                kind: *self,
                name: "tiny ResNet (BlazeIt specialized)",
                t4_tensorrt_throughput: 250_000.0,
                paper_top1_accuracy: None,
                input_size: 64,
                optimal_batch: 256,
            },
            ModelKind::TahomaSmall => VirtualModel {
                kind: *self,
                name: "Tahoma specialized CNN",
                t4_tensorrt_throughput: 120_000.0,
                paper_top1_accuracy: None,
                input_size: 64,
                optimal_batch: 256,
            },
            ModelKind::MaskRcnn => VirtualModel {
                kind: *self,
                name: "Mask R-CNN",
                t4_tensorrt_throughput: 4.0,
                paper_top1_accuracy: None,
                input_size: 800,
                optimal_batch: 1,
            },
        }
    }

    /// Input tensor size in bytes (f32 CHW at the model's input size).
    pub fn input_bytes(&self) -> usize {
        let s = self.spec().input_size;
        s * s * 3 * std::mem::size_of::<f32>()
    }

    /// Standard ResNet ladder considered by Smol's expanded search space
    /// (§5.1: "ResNet configurations (18 to 152)").
    pub fn resnet_ladder() -> [ModelKind; 5] {
        [
            ModelKind::ResNet18,
            ModelKind::ResNet34,
            ModelKind::ResNet50,
            ModelKind::ResNet101,
            ModelKind::ResNet152,
        ]
    }
}

/// Batch-efficiency curve: small batches under-utilize the device. The
/// saturating form `b/(b+k)` with `k=4` reaches ~94% at batch 64, matching
/// the convention that published anchors are near-peak.
pub fn batch_efficiency(batch: usize) -> f64 {
    let b = batch.max(1) as f64;
    b / (b + 4.0)
}

/// Throughput of `model` on a device whose ResNet-50 rate is
/// `device_scale` × the T4's, under `env` at `batch`.
pub fn throughput_scaled(
    model: ModelKind,
    device_scale: f64,
    env: ExecutionEnv,
    batch: usize,
) -> f64 {
    let spec = model.spec();
    let anchor_eff = batch_efficiency(spec.optimal_batch);
    let peak = spec.t4_tensorrt_throughput / anchor_eff;
    peak * batch_efficiency(batch) * device_scale * env.throughput_factor()
}

/// Throughput (images/second) of `model` on `device` under `env` at `batch`.
pub fn throughput(model: ModelKind, device: GpuModel, env: ExecutionEnv, batch: usize) -> f64 {
    throughput_scaled(model, device.scale_vs_t4(), env, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_tensorrt_anchors_match_tables() {
        // Table 2 values at the measured batch size.
        for (kind, expect) in [
            (ModelKind::ResNet18, 12_592.0),
            (ModelKind::ResNet34, 6_860.0),
            (ModelKind::ResNet50, 4_513.0),
        ] {
            let t = throughput(kind, GpuModel::T4, ExecutionEnv::TensorRt, 64);
            assert!(
                (t - expect).abs() / expect < 1e-9,
                "{kind:?}: {t} vs {expect}"
            );
        }
    }

    #[test]
    fn accuracy_ladder_monotone() {
        let ladder = ModelKind::resnet_ladder();
        let mut prev = 0.0;
        for kind in ladder {
            let acc = kind.spec().paper_top1_accuracy.unwrap();
            assert!(acc > prev);
            prev = acc;
        }
    }

    #[test]
    fn deeper_models_slower() {
        let ladder = ModelKind::resnet_ladder();
        let mut prev = f64::INFINITY;
        for kind in ladder {
            let t = kind.spec().t4_tensorrt_throughput;
            assert!(t < prev);
            prev = t;
        }
    }

    #[test]
    fn batch_one_is_much_slower_than_batch_64() {
        let t1 = throughput(ModelKind::ResNet50, GpuModel::T4, ExecutionEnv::TensorRt, 1);
        let t64 = throughput(
            ModelKind::ResNet50,
            GpuModel::T4,
            ExecutionEnv::TensorRt,
            64,
        );
        assert!(t1 < t64 * 0.35, "t1={t1} t64={t64}");
    }

    #[test]
    fn specialized_nns_exceed_preprocessing_scale() {
        // §5.1: specialized NNs run up to 250k im/s, far beyond decode rates.
        let t = throughput(
            ModelKind::TinyResNet,
            GpuModel::T4,
            ExecutionEnv::TensorRt,
            256,
        );
        assert!(t >= 250_000.0 * 0.99);
    }

    #[test]
    fn mask_rcnn_is_fps_scale() {
        let t = throughput(ModelKind::MaskRcnn, GpuModel::T4, ExecutionEnv::TensorRt, 1);
        assert!(t > 0.5 && t < 6.0, "t={t}");
    }

    #[test]
    fn input_bytes_for_resnet() {
        assert_eq!(ModelKind::ResNet50.input_bytes(), 224 * 224 * 3 * 4);
    }
}
