//! # smol-accel
//!
//! The virtual DNN accelerator substrate. The paper's experiments run on an
//! NVIDIA T4 with TensorRT; this reproduction runs on CPUs, so DNN execution
//! is modeled as a calibrated *service-time* process (see DESIGN.md,
//! substitution table):
//!
//! * [`device`] — GPU generation catalog (Table 5 anchors: K80 → RTX),
//!   power draw, copy bandwidths;
//! * [`models`] — virtual DNN catalog (Tables 1–2 anchors: ResNet ladder,
//!   MobileNet-SSD, BlazeIt's tiny ResNet, Mask R-CNN);
//! * [`envs`] — software-stack factors (Table 1: Keras / PyTorch / TensorRT);
//! * [`engine`] — the wall-clock [`engine::VirtualDevice`]: compute + copy
//!   engines with reservation timelines, so pipelining and contention are
//!   *measured*, not asserted;
//! * [`economics`] — §7 price/power arithmetic (core-price fit, cost
//!   breakdowns, ¢ per million images).

pub mod device;
pub mod economics;
pub mod engine;
pub mod envs;
pub mod models;

pub use device::{DeviceSpec, GpuModel};
pub use engine::{DeviceStats, VirtualDevice};
pub use envs::ExecutionEnv;
pub use models::{batch_efficiency, throughput, throughput_scaled, ModelKind, VirtualModel};
