//! Wall-clock virtual accelerator.
//!
//! The device is modeled as two serially-reusable engines — a **compute
//! engine** (SM array) and a **copy engine** (DMA) — each with a
//! reservation timeline. A caller submits work, is assigned the next free
//! slot on the engine, and *sleeps until its slot completes*, so pipelining,
//! backpressure, contention between preprocessing kernels and DNN kernels,
//! and the `min(preproc, exec)` law (§4) all emerge in real wall-clock
//! measurements rather than being asserted.
//!
//! A `time_scale` multiplier shrinks simulated durations uniformly so tests
//! exercise the same code paths quickly; harnesses run at scale 1.0.

use crate::device::{DeviceSpec, GpuModel};
use crate::envs::ExecutionEnv;
use crate::models::{throughput_scaled, ModelKind};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which engine a reservation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Compute,
    Copy,
}

#[derive(Debug)]
struct Timeline {
    origin: Instant,
    /// Seconds-from-origin at which each engine becomes free.
    compute_free_at: f64,
    copy_free_at: f64,
    /// Accumulated busy seconds per engine (for utilization reporting).
    compute_busy: f64,
    copy_busy: f64,
    kernels: u64,
    copies: u64,
}

/// Utilization snapshot of a virtual device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceStats {
    pub compute_busy_s: f64,
    pub copy_busy_s: f64,
    pub kernels: u64,
    pub copies: u64,
}

impl DeviceStats {
    /// Fraction of `elapsed_s` the compute engine was busy (clamped to
    /// [0, 1]); serving-side occupancy metric. Pass simulated-elapsed
    /// seconds ([`VirtualDevice::uptime_s`]) so the units agree.
    pub fn compute_occupancy(&self, elapsed_s: f64) -> f64 {
        if elapsed_s <= 0.0 {
            0.0
        } else {
            (self.compute_busy_s / elapsed_s).clamp(0.0, 1.0)
        }
    }

    /// Accumulates `other` into `self` — fleet-level aggregation across a
    /// device pool (busy seconds and op counts are additive; occupancy of
    /// the merged stats is busy seconds over *summed* device uptimes).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.compute_busy_s += other.compute_busy_s;
        self.copy_busy_s += other.copy_busy_s;
        self.kernels += other.kernels;
        self.copies += other.copies;
    }
}

/// A shared, thread-safe virtual accelerator.
#[derive(Debug, Clone)]
pub struct VirtualDevice {
    spec: DeviceSpec,
    env: ExecutionEnv,
    time_scale: f64,
    state: Arc<Mutex<Timeline>>,
}

impl VirtualDevice {
    /// Creates a device; `time_scale` < 1 speeds up simulated time
    /// uniformly (tests), 1.0 is real time (benchmarks).
    pub fn new(model: GpuModel, env: ExecutionEnv, time_scale: f64) -> Self {
        Self::with_spec(model.spec(), env, time_scale)
    }

    /// Creates a device from a custom spec (used by harnesses that need a
    /// specific execution rate, e.g. Table 3's balanced/bound regimes).
    pub fn with_spec(spec: DeviceSpec, env: ExecutionEnv, time_scale: f64) -> Self {
        VirtualDevice {
            spec,
            env,
            time_scale,
            state: Arc::new(Mutex::new(Timeline {
                origin: Instant::now(),
                compute_free_at: 0.0,
                copy_free_at: 0.0,
                compute_busy: 0.0,
                copy_busy: 0.0,
                kernels: 0,
                copies: 0,
            })),
        }
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    pub fn env(&self) -> ExecutionEnv {
        self.env
    }

    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Reserves `dur_s` *unscaled* seconds on an engine and sleeps until the
    /// reserved slot finishes. Returns the simulated duration actually
    /// reserved (scaled).
    fn occupy(&self, engine: Engine, dur_s: f64) -> f64 {
        let scaled = dur_s * self.time_scale;
        let deadline = {
            let mut tl = self.state.lock();
            let now = tl.origin.elapsed().as_secs_f64();
            let free_at = match engine {
                Engine::Compute => {
                    let start = tl.compute_free_at.max(now);
                    tl.compute_free_at = start + scaled;
                    tl.compute_busy += scaled;
                    tl.kernels += 1;
                    tl.compute_free_at
                }
                Engine::Copy => {
                    let start = tl.copy_free_at.max(now);
                    tl.copy_free_at = start + scaled;
                    tl.copy_busy += scaled;
                    tl.copies += 1;
                    tl.copy_free_at
                }
            };
            tl.origin + Duration::from_secs_f64(free_at)
        };
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        scaled
    }

    /// The device's ResNet-50 scale relative to the T4 anchor (honors
    /// custom specs from [`Self::with_spec`]).
    fn device_scale(&self) -> f64 {
        self.spec.resnet50_batch64 / GpuModel::T4.spec().resnet50_batch64
    }

    /// Executes one DNN batch: occupies the compute engine for
    /// `batch / throughput(model, batch)` seconds.
    pub fn dnn_batch(&self, model: ModelKind, batch: usize) -> f64 {
        let t = throughput_scaled(model, self.device_scale(), self.env, batch);
        self.occupy(Engine::Compute, batch as f64 / t)
    }

    /// Executes an accelerator-side preprocessing kernel measured in
    /// weighted ops (the `smol_imgproc::dag` unit).
    pub fn preproc_kernel(&self, weighted_ops: f64) -> f64 {
        self.occupy(
            Engine::Compute,
            weighted_ops / self.spec.elementwise_ops_per_s,
        )
    }

    /// Transfers `bytes` host→device, occupying the copy engine; pinned
    /// staging buffers get the fast DMA path (§6.1).
    pub fn transfer(&self, bytes: usize, pinned: bool) -> f64 {
        let bw = if pinned {
            self.spec.pinned_copy_bps
        } else {
            self.spec.pageable_copy_bps
        };
        if !bw.is_finite() {
            return 0.0;
        }
        // ~10µs submission latency + bandwidth term.
        self.occupy(Engine::Copy, 10e-6 + bytes as f64 / bw)
    }

    /// The throughput the device would sustain for `model` at `batch`
    /// (images/second in *simulated* time).
    pub fn model_throughput(&self, model: ModelKind, batch: usize) -> f64 {
        throughput_scaled(model, self.device_scale(), self.env, batch)
    }

    /// Wall-clock seconds since this device was created (the denominator
    /// for occupancy reporting; simulated and real time agree when
    /// `time_scale == 1`).
    pub fn uptime_s(&self) -> f64 {
        self.state.lock().origin.elapsed().as_secs_f64()
    }

    /// Utilization snapshot (simulated seconds).
    pub fn stats(&self) -> DeviceStats {
        let tl = self.state.lock();
        DeviceStats {
            compute_busy_s: tl.compute_busy,
            copy_busy_s: tl.copy_busy,
            kernels: tl.kernels,
            copies: tl.copies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn fast_t4() -> VirtualDevice {
        VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.02)
    }

    #[test]
    fn dnn_batch_takes_service_time() {
        let dev = fast_t4();
        let start = Instant::now();
        // 10 batches of 64 at 4513 im/s = 142ms unscaled → ~2.8ms scaled.
        for _ in 0..10 {
            dev.dnn_batch(ModelKind::ResNet50, 64);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let expected = 10.0 * 64.0 / 4513.0 * 0.02;
        assert!(elapsed >= expected * 0.9, "{elapsed} vs {expected}");
        assert_eq!(dev.stats().kernels, 10);
    }

    #[test]
    fn concurrent_submissions_serialize_on_compute() {
        let dev = fast_t4();
        let start = Instant::now();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let d = dev.clone();
                std::thread::spawn(move || {
                    d.dnn_batch(ModelKind::ResNet50, 64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        let serial = 4.0 * 64.0 / 4513.0 * 0.02;
        assert!(
            elapsed >= serial * 0.9,
            "4 kernels must serialize: {elapsed} vs {serial}"
        );
    }

    #[test]
    fn copy_and_compute_engines_overlap() {
        // Durations are kept well above OS sleep granularity so the
        // overlap-vs-serial comparison is meaningful.
        let dev = VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.5);
        let d2 = dev.clone();
        let start = Instant::now();
        let compute = std::thread::spawn(move || {
            for _ in 0..5 {
                d2.dnn_batch(ModelKind::ResNet50, 64);
            }
        });
        // 5 large pageable copies on the copy engine, concurrently.
        for _ in 0..5 {
            dev.transfer(20_000_000, false);
        }
        compute.join().unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        let compute_time = 5.0 * 64.0 / 4513.0 * 0.5;
        let copy_time = 5.0 * (10e-6 + 20e6 / 3.5e9) * 0.5;
        // Overlapped runtime must be well below the serialized sum.
        assert!(
            elapsed < (compute_time + copy_time) * 0.95,
            "elapsed={elapsed} sum={}",
            compute_time + copy_time
        );
        let stats = dev.stats();
        assert!(stats.copy_busy_s > 0.0 && stats.compute_busy_s > 0.0);
    }

    #[test]
    fn pinned_transfer_faster_than_pageable() {
        let dev = fast_t4();
        let pinned = dev.transfer(50_000_000, true);
        let pageable = dev.transfer(50_000_000, false);
        assert!(
            pinned < pageable / 2.0,
            "pinned={pinned} pageable={pageable}"
        );
    }

    #[test]
    fn preproc_kernel_scales_with_ops() {
        let dev = fast_t4();
        let small = dev.preproc_kernel(1e6);
        let large = dev.preproc_kernel(1e8);
        assert!(large > small * 50.0);
    }

    #[test]
    fn cpu_only_device_has_no_transfer_cost() {
        let dev = VirtualDevice::new(GpuModel::CpuOnly, ExecutionEnv::PyTorch, 0.01);
        assert_eq!(dev.transfer(1_000_000, false), 0.0);
    }
}
