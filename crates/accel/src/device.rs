//! Device catalog, calibrated to the paper's measurements (Table 5, §7).
//!
//! The simulator does not execute DNN arithmetic; it reproduces each
//! accelerator's *service rate* for DNN kernels, which is the only property
//! the paper's end-to-end claims depend on. `resnet50_batch64` is the
//! published throughput anchor; all model throughputs scale from it.

use serde::{Deserialize, Serialize};

/// Accelerator generations benchmarked in Table 5 (plus a CPU pseudo-device
/// for CPU-only execution baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    K80,
    P100,
    V100,
    T4,
    Rtx,
    /// CPU pseudo-device: DNN execution on the host, roughly 2 im/s/core on
    /// ResNet-50-class models (no accelerator).
    CpuOnly,
}

/// Static description of a device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    pub model: GpuModel,
    pub name: &'static str,
    pub release_year: u32,
    /// ResNet-50 images/second at batch 64 with an optimized compiler
    /// (TensorRT), from Table 5 (RTX uses the reported figure).
    pub resnet50_batch64: f64,
    /// Board power in watts (used by the §7 economics model).
    pub power_watts: f64,
    /// Effective elementwise preprocessing throughput when preprocessing
    /// ops are *placed on the accelerator* (§6.3), in weighted-ops/second
    /// (the unit produced by `smol_imgproc::dag::plan_cost`). Memory-bound,
    /// so it scales with memory bandwidth rather than FLOPs.
    pub elementwise_ops_per_s: f64,
    /// Pinned-memory host→device copy bandwidth, bytes/second.
    pub pinned_copy_bps: f64,
    /// Pageable host→device copy bandwidth, bytes/second.
    pub pageable_copy_bps: f64,
}

impl GpuModel {
    /// The calibrated spec for this device.
    pub fn spec(&self) -> DeviceSpec {
        match self {
            GpuModel::K80 => DeviceSpec {
                model: *self,
                name: "NVIDIA K80",
                release_year: 2014,
                resnet50_batch64: 159.0,
                power_watts: 300.0,
                elementwise_ops_per_s: 30e9,
                pinned_copy_bps: 6e9,
                pageable_copy_bps: 2.5e9,
            },
            GpuModel::P100 => DeviceSpec {
                model: *self,
                name: "NVIDIA P100",
                release_year: 2016,
                resnet50_batch64: 1955.0,
                power_watts: 250.0,
                elementwise_ops_per_s: 55e9,
                pinned_copy_bps: 11e9,
                pageable_copy_bps: 3.5e9,
            },
            GpuModel::V100 => DeviceSpec {
                model: *self,
                name: "NVIDIA V100",
                release_year: 2017,
                resnet50_batch64: 7151.0,
                power_watts: 300.0,
                elementwise_ops_per_s: 80e9,
                pinned_copy_bps: 12e9,
                pageable_copy_bps: 4e9,
            },
            GpuModel::T4 => DeviceSpec {
                model: *self,
                name: "NVIDIA T4",
                release_year: 2019,
                resnet50_batch64: 4513.0,
                power_watts: 70.0,
                elementwise_ops_per_s: 60e9,
                pinned_copy_bps: 11e9,
                pageable_copy_bps: 3.5e9,
            },
            GpuModel::Rtx => DeviceSpec {
                model: *self,
                name: "RTX (reported)",
                release_year: 2019,
                resnet50_batch64: 15008.0,
                power_watts: 280.0,
                elementwise_ops_per_s: 90e9,
                pinned_copy_bps: 12e9,
                pageable_copy_bps: 4e9,
            },
            GpuModel::CpuOnly => DeviceSpec {
                model: *self,
                name: "CPU (no accelerator)",
                release_year: 2019,
                resnet50_batch64: 8.0,
                power_watts: 210.0,
                elementwise_ops_per_s: 5e9,
                pinned_copy_bps: f64::INFINITY,
                pageable_copy_bps: f64::INFINITY,
            },
        }
    }

    /// Throughput scale relative to the T4 anchor.
    pub fn scale_vs_t4(&self) -> f64 {
        self.spec().resnet50_batch64 / GpuModel::T4.spec().resnet50_batch64
    }

    /// All GPU generations of Table 5, in the paper's row order.
    pub fn table5_order() -> [GpuModel; 5] {
        [
            GpuModel::K80,
            GpuModel::P100,
            GpuModel::T4,
            GpuModel::V100,
            GpuModel::Rtx,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_anchor_matches_paper() {
        assert_eq!(GpuModel::T4.spec().resnet50_batch64, 4513.0);
        assert_eq!(GpuModel::T4.spec().power_watts, 70.0);
    }

    #[test]
    fn throughput_improves_across_generations() {
        // Table 5's claim: >28× improvement from K80 to T4, 94× to RTX-class.
        let k80 = GpuModel::K80.spec().resnet50_batch64;
        let t4 = GpuModel::T4.spec().resnet50_batch64;
        let rtx = GpuModel::Rtx.spec().resnet50_batch64;
        assert!(t4 / k80 > 28.0);
        assert!(rtx / k80 > 94.0);
    }

    #[test]
    fn t4_is_power_efficient_vs_v100() {
        let t4 = GpuModel::T4.spec();
        let v100 = GpuModel::V100.spec();
        let t4_eff = t4.resnet50_batch64 / t4.power_watts;
        let v100_eff = v100.resnet50_batch64 / v100.power_watts;
        assert!(t4_eff > v100_eff);
    }

    #[test]
    fn scale_vs_t4_is_one_for_t4() {
        assert_eq!(GpuModel::T4.scale_vs_t4(), 1.0);
        assert!(GpuModel::V100.scale_vs_t4() > 1.0);
        assert!(GpuModel::K80.scale_vs_t4() < 0.05);
    }
}
