//! Dollar-cost and power accounting (§7 and Table 8).
//!
//! Reproduces the paper's arithmetic: the per-core price is a linear
//! interpolation over the g4dn instance family assuming a fixed T4 price,
//! and preprocessing cost/power follow from how many cores are needed to
//! match the accelerator's DNN throughput.

use serde::{Deserialize, Serialize};

/// One cloud instance offering.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InstanceType {
    pub name: &'static str,
    pub vcpus: u32,
    pub gpus: u32,
    pub price_per_hour: f64,
}

/// The AWS g4dn family as priced at publication time (us-east-1,
/// on-demand). Each carries one T4 except the metal/12xl variants, which
/// the paper's fit excludes.
pub fn g4dn_family() -> Vec<InstanceType> {
    vec![
        InstanceType {
            name: "g4dn.xlarge",
            vcpus: 4,
            gpus: 1,
            price_per_hour: 0.526,
        },
        InstanceType {
            name: "g4dn.2xlarge",
            vcpus: 8,
            gpus: 1,
            price_per_hour: 0.752,
        },
        InstanceType {
            name: "g4dn.4xlarge",
            vcpus: 16,
            gpus: 1,
            price_per_hour: 1.204,
        },
        InstanceType {
            name: "g4dn.8xlarge",
            vcpus: 32,
            gpus: 1,
            price_per_hour: 2.176,
        },
        InstanceType {
            name: "g4dn.16xlarge",
            vcpus: 64,
            gpus: 1,
            price_per_hour: 4.352,
        },
    ]
}

/// CPU power per vCPU core (§7: 210 W Xeon 8259CL / 48 vCPUs ≈ 4.375 W).
pub const WATTS_PER_VCPU: f64 = 4.375;
/// T4 board power (§7).
pub const T4_WATTS: f64 = 70.0;

/// Result of the linear price fit `price = gpu_price + vcpus · core_price`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceFit {
    pub gpu_price_per_hour: f64,
    pub core_price_per_hour: f64,
    pub r_squared: f64,
}

/// Least-squares fit of per-core price across an instance family with a
/// shared single-GPU price (the paper's method; expected ≈ $0.218 for the
/// T4 and ≈ $0.0639 per vCPU, R² ≈ 0.999).
pub fn fit_core_price(instances: &[InstanceType]) -> PriceFit {
    let n = instances.len() as f64;
    let mean_x: f64 = instances.iter().map(|i| i.vcpus as f64).sum::<f64>() / n;
    let mean_y: f64 = instances.iter().map(|i| i.price_per_hour).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for i in instances {
        let dx = i.vcpus as f64 - mean_x;
        let dy = i.price_per_hour - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // R².
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in instances {
        let pred = intercept + slope * i.vcpus as f64;
        ss_res += (i.price_per_hour - pred).powi(2);
        ss_tot += (i.price_per_hour - mean_y).powi(2);
    }
    PriceFit {
        gpu_price_per_hour: intercept,
        core_price_per_hour: slope,
        r_squared: 1.0 - ss_res / ss_tot,
    }
}

/// Hourly cost and power of preprocessing vs DNN execution for a model that
/// executes at `dnn_throughput` im/s while one CPU core preprocesses
/// `preproc_per_core` im/s: the cores needed to *feed* the accelerator
/// define the preprocessing side (§7's comparison).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostBreakdown {
    pub cores_needed: f64,
    pub preproc_price_per_hour: f64,
    pub dnn_price_per_hour: f64,
    pub preproc_watts: f64,
    pub dnn_watts: f64,
}

impl CostBreakdown {
    pub fn price_ratio(&self) -> f64 {
        self.preproc_price_per_hour / self.dnn_price_per_hour
    }

    pub fn power_ratio(&self) -> f64 {
        self.preproc_watts / self.dnn_watts
    }
}

/// Computes the §7 breakdown from throughput anchors and a price fit.
pub fn cost_breakdown(dnn_throughput: f64, preproc_per_core: f64, fit: &PriceFit) -> CostBreakdown {
    let cores = dnn_throughput / preproc_per_core;
    CostBreakdown {
        cores_needed: cores,
        preproc_price_per_hour: cores * fit.core_price_per_hour,
        dnn_price_per_hour: fit.gpu_price_per_hour,
        preproc_watts: cores * WATTS_PER_VCPU,
        dnn_watts: T4_WATTS,
    }
}

/// Cost in cents per million images at a measured throughput on a given
/// instance (Table 8's cost column).
pub fn cents_per_million_images(throughput_im_s: f64, instance_price_per_hour: f64) -> f64 {
    let hours_per_million = 1e6 / throughput_im_s / 3600.0;
    hours_per_million * instance_price_per_hour * 100.0
}

/// Paper-calibrated full-resolution ImageNet decode throughput per vCPU
/// core, implied by §7's $2.37 / 161 W figures for ResNet-50 (≈ 123 im/s).
pub const PAPER_PREPROC_PER_CORE: f64 = 123.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_fit_matches_paper_constants() {
        let fit = fit_core_price(&g4dn_family());
        assert!(
            (fit.gpu_price_per_hour - 0.218).abs() < 0.02,
            "gpu={}",
            fit.gpu_price_per_hour
        );
        assert!(
            (fit.core_price_per_hour - 0.0639).abs() < 0.003,
            "core={}",
            fit.core_price_per_hour
        );
        // The paper reports R² = 0.999; the public price list yields 0.9986.
        assert!(fit.r_squared > 0.998, "r2={}", fit.r_squared);
    }

    #[test]
    fn about_3_4_cores_equal_one_t4() {
        let fit = fit_core_price(&g4dn_family());
        let cores = fit.gpu_price_per_hour / fit.core_price_per_hour;
        assert!((cores - 3.4).abs() < 0.3, "cores={cores}");
    }

    #[test]
    fn resnet50_preproc_costs_11x_dnn() {
        let fit = fit_core_price(&g4dn_family());
        let b = cost_breakdown(4513.0, PAPER_PREPROC_PER_CORE, &fit);
        assert!(
            b.price_ratio() > 9.0 && b.price_ratio() < 13.0,
            "ratio={}",
            b.price_ratio()
        );
        assert!(
            (b.preproc_price_per_hour - 2.37).abs() < 0.3,
            "preproc $/h = {}",
            b.preproc_price_per_hour
        );
    }

    #[test]
    fn resnet50_preproc_power_about_2_3x() {
        let fit = fit_core_price(&g4dn_family());
        let b = cost_breakdown(4513.0, PAPER_PREPROC_PER_CORE, &fit);
        assert!(
            b.power_ratio() > 2.0 && b.power_ratio() < 2.6,
            "power ratio={}",
            b.power_ratio()
        );
        assert!((b.preproc_watts - 161.0).abs() < 10.0);
    }

    #[test]
    fn resnet18_imbalance_is_larger() {
        let fit = fit_core_price(&g4dn_family());
        let rn50 = cost_breakdown(4513.0, PAPER_PREPROC_PER_CORE, &fit);
        let rn18 = cost_breakdown(12592.0, PAPER_PREPROC_PER_CORE, &fit);
        assert!(rn18.price_ratio() > rn50.price_ratio() * 2.0);
        assert!((rn18.preproc_watts - 444.0).abs() < 15.0);
    }

    #[test]
    fn cents_per_million_sane() {
        // 1927 im/s on g4dn.xlarge ($0.526/h) ≈ 7.6 ¢/M (Table 8, row 1).
        let c = cents_per_million_images(1927.0, 0.526);
        assert!((c - 7.58).abs() < 0.2, "c={c}");
    }
}
