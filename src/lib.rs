//! # Smol — umbrella crate
//!
//! Re-exports the public API of the Smol reproduction so that examples and
//! downstream users can depend on a single crate. See the workspace README
//! for the architecture overview and `DESIGN.md` for the system inventory.
//!
//! The front door is the declarative [`Session`] (§3.1's contract):
//! register a [`Dataset`], state a constraint, get a served result —
//!
//! ```no_run
//! use smol::accel::{ExecutionEnv, GpuModel, VirtualDevice};
//! use smol::{Dataset, Query, Session, SessionConfig};
//!
//! # fn main() -> Result<(), smol::Error> {
//! let device = VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 1.0);
//! let session = Session::new(device, SessionConfig::default());
//! session.register(Dataset::new("photos") /* …variants + calibration… */)?;
//! let report = session.run(&Query::new("photos").max_accuracy_loss(0.005))?;
//! println!("{}: {:.0} im/s", report.label, report.throughput);
//! # Ok(())
//! # }
//! ```
//!
//! The lower layers stay addressable for harnesses and lesion studies:
//!
//! ```
//! use smol::imgproc::{DagOptimizer, PreprocPlan};
//! let plan = PreprocPlan::standard(256, 224, 224);
//! let optimized = DagOptimizer::default().optimize(&plan, 640, 480);
//! assert!(optimized.ops.len() <= plan.ops.len());
//! ```

// The declarative top of the stack, at the crate root.
pub use smol_core::{Constraint, PlanError};
pub use smol_serve::{
    AccuracyTable, CacheStats, Calibration, Dataset, Explanation, MeasuredCalibration, PlanCache,
    Query, Session, SessionConfig, SessionError,
};

/// The workspace-level error type: everything `Session` operations can
/// fail with (planning, serving, registration).
pub use smol_serve::SessionError as Error;

pub use smol_accel as accel;
pub use smol_analytics as analytics;
pub use smol_codec as codec;
pub use smol_core as core;
pub use smol_data as data;
pub use smol_imgproc as imgproc;
pub use smol_nn as nn;
pub use smol_runtime as runtime;
pub use smol_serve as serve;
pub use smol_video as video;
