//! # Smol — umbrella crate
//!
//! Re-exports the public API of the Smol reproduction so that examples and
//! downstream users can depend on a single crate. See the workspace README
//! for the architecture overview and `DESIGN.md` for the system inventory.
//!
//! ```
//! use smol::imgproc::{DagOptimizer, PreprocPlan};
//! let plan = PreprocPlan::standard(256, 224, 224);
//! let optimized = DagOptimizer::default().optimize(&plan, 640, 480);
//! assert!(optimized.ops.len() <= plan.ops.len());
//! ```

pub use smol_accel as accel;
pub use smol_analytics as analytics;
pub use smol_codec as codec;
pub use smol_core as core;
pub use smol_data as data;
pub use smol_imgproc as imgproc;
pub use smol_nn as nn;
pub use smol_runtime as runtime;
pub use smol_serve as serve;
pub use smol_video as video;
