//! # Smol — umbrella crate
//!
//! Re-exports the public API of the Smol reproduction so that examples and
//! downstream users can depend on a single crate. See the workspace README
//! for the architecture overview and `DESIGN.md` for the system inventory.
//!
//! The front door is the declarative [`Session`] (§3.1's contract):
//! register a [`Dataset`], state a constraint, get a served result. This
//! is the README's Quickstart at doctest scale (it really runs —
//! profiling, planning, caching, serving):
//!
//! ```
//! use smol::accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
//! use smol::data::{serving_variants, still_catalog};
//! use smol::{AccuracyTable, Calibration, Dataset, Query, Session, SessionConfig};
//!
//! # fn main() -> Result<(), smol::Error> {
//! let device = VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.05);
//! let session = Session::new(device, SessionConfig::default());
//! // The §8.1 serving layout: full-res sjpg(q=95) + 161px thumbnails.
//! let spec = &still_catalog()[3];
//! session.register(
//!     Dataset::new("photos")
//!         .with_model(ModelKind::ResNet50)
//!         .with_model(ModelKind::ResNet34)
//!         .with_encoded_variants(serving_variants(spec, 1, 8).expect("encode"))
//!         .with_calibration(Calibration::Table(
//!             AccuracyTable::new()
//!                 .with(ModelKind::ResNet50, "full-res sjpg(q=95)", 0.7516)
//!                 .with(ModelKind::ResNet50, "161 spng", 0.7500)
//!                 .with(ModelKind::ResNet34, "full-res sjpg(q=95)", 0.7272),
//!         )),
//! )?;
//! // "Within half a point of the best accuracy, go as fast as possible."
//! let report = session.run(&Query::new("photos").max_accuracy_loss(0.005))?;
//! assert_eq!(report.images, 8);
//! session.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! Video corpora go through the same door — GOPs are the serving items,
//! the planner picks the frame selection (see `examples/video_query.rs`
//! for the full walkthrough):
//!
//! ```
//! use smol::accel::{ExecutionEnv, GpuModel, ModelKind, VirtualDevice};
//! use smol::data::{gop_corpus, video_catalog};
//! use smol::{AccuracyTable, Calibration, Dataset, Query, Session, SessionConfig};
//!
//! # fn main() -> Result<(), smol::Error> {
//! let corpus = gop_corpus(&video_catalog()[1], 7, 4, 6); // 4 GOPs x 6 frames
//! let variant = corpus.name.clone();
//! let device = VirtualDevice::new(GpuModel::T4, ExecutionEnv::TensorRt, 0.05);
//! let session = Session::new(device, SessionConfig::default());
//! session.register(
//!     Dataset::video("traffic", corpus)
//!         .with_model(ModelKind::ResNet50)
//!         .with_calibration(Calibration::Table(
//!             AccuracyTable::new()
//!                 .with(ModelKind::ResNet50, &variant, 0.81)
//!                 .with_keyframes(ModelKind::ResNet50, &variant, 0.81, 0.79),
//!         )),
//! )?;
//! // Tolerant: the planner picks keyframe-only decode — 1 frame per GOP.
//! let fast = session.run(&Query::new("traffic").max_accuracy_loss(0.03))?;
//! assert_eq!(fast.images, 4);
//! // Zero-loss: full-GOP decode — every frame.
//! let strict = session.run(&Query::new("traffic").max_accuracy_loss(0.0))?;
//! assert_eq!(strict.images, 24);
//! session.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! The lower layers stay addressable for harnesses and lesion studies:
//!
//! ```
//! use smol::imgproc::{DagOptimizer, PreprocPlan};
//! let plan = PreprocPlan::standard(256, 224, 224);
//! let optimized = DagOptimizer::default().optimize(&plan, 640, 480);
//! assert!(optimized.ops.len() <= plan.ops.len());
//! ```

// The declarative top of the stack, at the crate root.
pub use smol_core::{Constraint, FrameSelection, PlanError};
pub use smol_serve::{
    AccuracyTable, CacheStats, Calibration, Dataset, Explanation, MeasuredCalibration, PlanCache,
    Priority, Query, Session, SessionConfig, SessionError,
};
pub use smol_stream::{
    run_stream, FeedSource, StreamConfig, StreamHandle, StreamSource, StreamStats, WindowResult,
};

/// The workspace-level error type: everything `Session` operations can
/// fail with (planning, serving, registration).
pub use smol_serve::SessionError as Error;

pub use smol_accel as accel;
pub use smol_analytics as analytics;
pub use smol_codec as codec;
pub use smol_core as core;
pub use smol_data as data;
pub use smol_imgproc as imgproc;
pub use smol_nn as nn;
pub use smol_runtime as runtime;
pub use smol_serve as serve;
pub use smol_stream as stream;
pub use smol_video as video;
